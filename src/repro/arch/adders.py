"""Vectorised n-bit ripple-carry adder with an optional faulty cell.

The unit mirrors the paper's test architecture: a chain of full-adder
cells where at most one cell (``fault_position``) behaves according to a
faulty truth table.  Subtraction and negation are realised exactly as the
paper describes the ``g`` function: one's-complement the second operand
and assert the carry-in -- both flow through the *same* (possibly
faulty) adder chain, which is what makes error compensation possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.arch.bitops import (
    ArrayLike,
    broadcast_pair,
    check_width,
    mask_of,
    ones_complement,
)
from repro.arch.cell import FullAdderCell, reference_cell
from repro.errors import FaultError, SimulationError


@dataclass
class RippleCarryAdderUnit:
    """An n-bit ripple-carry adder functional unit.

    Attributes:
        width: operand width in bits.
        faulty_cell: the behaviour of the faulty cell, or None.
        fault_position: index of the faulty cell in the chain (0 = LSB).
    """

    width: int
    faulty_cell: Optional[FullAdderCell] = None
    fault_position: Optional[int] = None

    def __post_init__(self) -> None:
        check_width(self.width)
        if (self.faulty_cell is None) != (self.fault_position is None):
            raise FaultError(
                "faulty_cell and fault_position must be given together"
            )
        if self.fault_position is not None and not (
            0 <= self.fault_position < self.width
        ):
            raise FaultError(
                f"fault_position {self.fault_position} outside [0, {self.width})"
            )
        self._ref = reference_cell(
            self.faulty_cell.fault.netlist_style
            if self.faulty_cell is not None and self.faulty_cell.fault is not None
            else "xor3_majority"
        )

    # ------------------------------------------------------------------
    @property
    def is_faulty(self) -> bool:
        return self.faulty_cell is not None

    @property
    def mask(self) -> int:
        return mask_of(self.width)

    # ------------------------------------------------------------------
    def add(
        self, a: ArrayLike, b: ArrayLike, cin: int = 0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Ripple-carry addition; returns ``(sum mod 2**width, carry_out)``.

        Operands are unsigned ``width``-bit patterns (two's-complement
        values should be masked by the caller; see
        :mod:`repro.arch.bitops`).  Vectorised: operands may be NumPy
        arrays of any broadcastable shape.
        """
        if cin not in (0, 1):
            raise SimulationError(f"carry-in must be 0 or 1, got {cin!r}")
        a_arr, b_arr = broadcast_pair(a, b)
        if int(np.max(a_arr, initial=0)) > self.mask or int(
            np.max(b_arr, initial=0)
        ) > self.mask:
            raise SimulationError(
                f"operand exceeds {self.width}-bit range of this unit"
            )
        shape = np.broadcast_shapes(a_arr.shape, b_arr.shape)
        total = np.zeros(shape, dtype=np.uint64)
        carry = np.full(shape, np.uint64(cin), dtype=np.uint64)
        one = np.uint64(1)
        two = np.uint64(2)
        if self.faulty_cell is not None:
            s_lut, c_lut = self.faulty_cell.luts()
        for i in range(self.width):
            shift = np.uint64(i)
            ai = (a_arr >> shift) & one
            bi = (b_arr >> shift) & one
            if self.fault_position == i:
                idx = (ai | (bi << one) | (carry << two)).astype(np.int64)
                si = s_lut[idx]
                ci = c_lut[idx]
            else:
                si = ai ^ bi ^ carry
                ci = (ai & bi) | (carry & (ai ^ bi))
            total |= si << shift
            carry = ci
        return total, carry

    def sub(self, a: ArrayLike, b: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
        """Two's-complement subtraction ``a - b`` through the adder core.

        Implements the paper's ``g`` function: the subtrahend is
        one's-complemented and the carry-in is asserted, so the faulty
        cell participates in the check operation exactly as in the
        nominal one.  Returns ``(difference mod 2**width, carry_out)``
        where the carry-out is the *not-borrow* flag.
        """
        _, b_arr = broadcast_pair(a, b)
        return self.add(a, ones_complement(b_arr, self.width), cin=1)

    def neg(self, a: ArrayLike) -> np.ndarray:
        """Two's-complement negation ``-a`` through the adder core."""
        a_arr = np.asarray(a, dtype=np.uint64)
        zero = np.zeros_like(a_arr)
        result, _ = self.add(zero, ones_complement(a_arr, self.width), cin=1)
        return result

    # ------------------------------------------------------------------
    def golden_add(self, a: ArrayLike, b: ArrayLike, cin: int = 0) -> np.ndarray:
        """Reference addition (never faulty), for expected values."""
        a_arr, b_arr = broadcast_pair(a, b)
        return (a_arr + b_arr + np.uint64(cin)) & np.uint64(self.mask)

    def golden_sub(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Reference subtraction (never faulty)."""
        a_arr, b_arr = broadcast_pair(a, b)
        return (a_arr - b_arr) & np.uint64(self.mask)
