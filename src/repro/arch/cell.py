"""Full-adder cells and their faulty variants.

A :class:`FullAdderCell` is a functional truth table ``(a, b, cin) ->
(s, cout)`` stored as two 8-entry lookup arrays.  The fault-free cell and
the 32 faulty variants are derived by exhaustively simulating a
gate-level full-adder netlist (:mod:`repro.gates.builders`) under each
single stuck-at fault of its stem+branch fault universe -- exactly the
paper's "functional level" model where *the faulty functional unit is
the single full-adder in the chain* and ``num_faults_1bit = 32``.

Two cell netlists are provided:

* ``"xor3_majority"`` (default): ``s = a^b^cin``,
  ``cout = (a&b) | (cin&(a|b))`` -- 16 fault sites;
* ``"two_xor"``: the textbook five-gate adder -- also 16 fault sites but
  with an exposed internal propagate net, which makes compensating
  (undetectable) errors more frequent.  Kept for the sensitivity ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import FaultError
from repro.gates.builders import full_adder, full_adder_xor3
from repro.gates.engine import engine_for
from repro.gates.faults import FaultSite, StuckAtFault, full_fault_list
from repro.gates.netlist import Netlist
from repro.gates.simulate import NetlistSimulator

#: Number of single stuck-at faults of the 1-bit full adder, as quoted by
#: the paper's Table 2 situation-count formula.
NUM_FA_FAULTS = 32

_NETLIST_BUILDERS = {
    "xor3_majority": full_adder_xor3,
    "two_xor": full_adder,
}

DEFAULT_CELL_NETLIST = "xor3_majority"


@dataclass(frozen=True)
class CellFault:
    """Identity of a faulty cell variant: netlist style + stuck-at fault."""

    netlist_style: str
    fault: StuckAtFault

    def describe(self) -> str:
        return f"{self.fault.describe()} [{self.netlist_style}]"


@dataclass(frozen=True)
class FullAdderCell:
    """A (possibly faulty) full-adder behaviour as two 8-entry LUTs.

    The LUT index is ``a | (b << 1) | (cin << 2)``.
    """

    sum_lut: Tuple[int, ...]
    carry_lut: Tuple[int, ...]
    fault: CellFault = None

    def __post_init__(self) -> None:
        if len(self.sum_lut) != 8 or len(self.carry_lut) != 8:
            raise FaultError("full-adder LUTs must have 8 entries")

    @property
    def is_faulty(self) -> bool:
        return self.fault is not None

    # NumPy views, cached lazily per instance (frozen dataclass, so via dict)
    def luts(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (sum, carry) LUTs as uint64 arrays for vector indexing."""
        return (
            np.asarray(self.sum_lut, dtype=np.uint64),
            np.asarray(self.carry_lut, dtype=np.uint64),
        )

    def evaluate(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        """Scalar evaluation of the cell."""
        idx = (a & 1) | ((b & 1) << 1) | ((cin & 1) << 2)
        return self.sum_lut[idx], self.carry_lut[idx]

    def differs_from(self, other: "FullAdderCell") -> bool:
        """True if the two cells differ on any input combination."""
        return self.sum_lut != other.sum_lut or self.carry_lut != other.carry_lut


def _luts_from_table(netlist: Netlist, table) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Extract the (sum, carry) LUT pair from an exhaustive truth table.

    ``table`` has shape ``(8, n_outputs)`` in ``primary_outputs`` column
    order; primary inputs are declared a, b, cin, so combo index bit0=a
    matches our LUT convention directly.
    """
    s_col = netlist.primary_outputs.index("s")
    c_col = netlist.primary_outputs.index("cout")
    return tuple(int(v) for v in table[:, s_col]), tuple(int(v) for v in table[:, c_col])


def _lut_from_netlist(netlist: Netlist, fault: StuckAtFault = None) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    return _luts_from_table(netlist, NetlistSimulator(netlist).truth_table(fault))


def reference_cell(netlist_style: str = DEFAULT_CELL_NETLIST) -> FullAdderCell:
    """The fault-free full-adder cell (identical for every style)."""
    builder = _get_builder(netlist_style)
    s_lut, c_lut = _lut_from_netlist(builder())
    return FullAdderCell(s_lut, c_lut, fault=None)


def _get_builder(netlist_style: str):
    try:
        return _NETLIST_BUILDERS[netlist_style]
    except KeyError:
        raise FaultError(
            f"unknown cell netlist style {netlist_style!r}; "
            f"choose from {sorted(_NETLIST_BUILDERS)}"
        ) from None


def cell_netlist(netlist_style: str = DEFAULT_CELL_NETLIST) -> Netlist:
    """A fresh copy of the gate-level full-adder cell netlist.

    The same netlist whose faulty truth tables define the LUT library;
    the gate-level test architectures (:mod:`repro.arch.testbench`)
    instantiate it structurally so cell-level faults can be translated
    onto chain positions.
    """
    return _get_builder(netlist_style)()


_library_cache: Dict[str, List[FullAdderCell]] = {}


def faulty_cell_library(netlist_style: str = DEFAULT_CELL_NETLIST) -> List[FullAdderCell]:
    """All 32 faulty full-adder variants for ``netlist_style``.

    The list order is deterministic (fault-site enumeration order, SA0
    before SA1).  Variants whose behaviour happens to coincide with the
    fault-free cell are *not* removed: the paper's situation counts keep
    the full 32-fault universe.
    """
    if netlist_style not in _library_cache:
        builder = _get_builder(netlist_style)
        netlist = builder()
        faults = full_fault_list(netlist)
        # One batched bit-parallel pass produces all 32 faulty truth
        # tables at once instead of 32 interpreter walks.
        tables = engine_for(netlist).truth_tables(faults)  # (n_faults, 8, n_outputs)
        cells: List[FullAdderCell] = []
        for fault, table in zip(faults, tables):
            s_lut, c_lut = _luts_from_table(netlist, table)
            cells.append(
                FullAdderCell(s_lut, c_lut, fault=CellFault(netlist_style, fault))
            )
        if len(cells) != NUM_FA_FAULTS:
            raise FaultError(
                f"cell netlist {netlist_style!r} has {len(cells)} faults, "
                f"expected {NUM_FA_FAULTS}"
            )
        _library_cache[netlist_style] = cells
    return list(_library_cache[netlist_style])


def effective_faulty_cells(netlist_style: str = DEFAULT_CELL_NETLIST) -> List[FullAdderCell]:
    """The subset of faulty variants that differ from the fault-free cell."""
    ref = reference_cell(netlist_style)
    return [cell for cell in faulty_cell_library(netlist_style) if cell.differs_from(ref)]


@dataclass(frozen=True)
class CollapsedCellGroup:
    """A functional equivalence class of the faulty-cell library.

    ``representative`` is the first library member with this (sum, carry)
    LUT pair, ``multiplicity`` the class size, and ``is_reference`` marks
    classes whose behaviour coincides with the fault-free cell (their
    chains compute exact results, so every situation is trivially
    covered).  Because two cells with identical LUTs drive the unit
    identically on every operand, simulating one representative and
    weighting its verdicts by ``multiplicity`` is exact -- not an
    approximation -- while the situation accounting still spans the full
    32-fault universe the paper counts.
    """

    representative: FullAdderCell
    multiplicity: int
    is_reference: bool


def collapsed_cell_library(
    netlist_style: str = DEFAULT_CELL_NETLIST,
) -> List[CollapsedCellGroup]:
    """Functionally collapsed faulty-cell library for ``netlist_style``.

    Groups the 32 faulty variants by identical (sum, carry) LUT pairs, in
    first-appearance order.  The batched Table 2 evaluators simulate one
    representative per group and broadcast the exact per-situation counts
    to the whole class.
    """
    ref = reference_cell(netlist_style)
    groups: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], List[FullAdderCell]] = {}
    order: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    for cell in faulty_cell_library(netlist_style):
        key = (cell.sum_lut, cell.carry_lut)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(cell)
    return [
        CollapsedCellGroup(
            representative=groups[key][0],
            multiplicity=len(groups[key]),
            is_reference=not groups[key][0].differs_from(ref),
        )
        for key in order
    ]


def bitflip_cell_library(netlist_style: str = DEFAULT_CELL_NETLIST) -> List[FullAdderCell]:
    """Bit-flip faulty cells: output bits inverted on every evaluation.

    The paper's fault model names bit-flips alongside stuck-ats as
    error manifestations of the failed unit; these three variants flip
    the sum, the carry, or both, uniformly across the truth table.
    They are *not* part of the Table 2 universe (which the paper sizes
    at 32 stuck-at faults) but extend campaign studies.
    """
    ref = reference_cell(netlist_style)
    flips = []
    for flip_s, flip_c, tag in ((1, 0, "s"), (0, 1, "cout"), (1, 1, "both")):
        s_lut = tuple(v ^ flip_s for v in ref.sum_lut)
        c_lut = tuple(v ^ flip_c for v in ref.carry_lut)
        site = FaultSite(f"bitflip_{tag}")
        fault = CellFault(netlist_style, StuckAtFault(site, 0))
        flips.append(FullAdderCell(s_lut, c_lut, fault=fault))
    return flips
