"""Bit-parallel gate-level simulation and batched fault campaigns.

This is the execution layer on top of :mod:`repro.gates.compile`.  Test
vectors are packed 64 per ``uint64`` word (vector ``v`` lives in bit
``v % 64`` of word ``v // 64``), so one word-wide bitwise operation
evaluates a gate for 64 vectors at once -- the classical bit-parallel
acceleration that makes exhaustive stuck-at evaluation tractable.

Three levels of service:

* :meth:`BitParallelEngine.run_words` -- fault-free (or single-fault)
  evaluation of every net over a packed vector set;
* :meth:`BitParallelEngine.truth_tables` -- faulty truth tables for many
  faults in one pass (the faulty cell-library builder uses this);
* :meth:`BitParallelEngine.campaign` /
  :func:`run_stuck_at_campaign` -- a batched fault campaign: the whole
  stuck-at universe is simulated as a *fault-major matrix* (``n_nets x
  n_faults x n_words``) against one shared golden run, with structural
  fault collapsing (only one representative per equivalence class is
  simulated) and fault dropping (detected faults leave the matrix
  between vector chunks);
* :meth:`BitParallelEngine.run_fault_groups` -- the same fault-major
  matrix for *multi-site fault groups* (several stuck-ats injected
  together per row), which is how the Table 2 coverage sweep replicates
  one cell-level fault into the nominal and checking copies of a
  functional unit (:mod:`repro.arch.testbench`).

Streaming wide sweeps: :func:`exhaustive_word_range` materialises any
word slice of an arbitrarily wide exhaustive vector set, and
:func:`popcount_words` reduces packed classification masks to exact
vector counts, so coverage campaigns run in O(chunk) memory.

Fault semantics match the reference interpreter
(:class:`repro.gates.simulate.ReferenceSimulator`): a *stem* fault
overrides the net value seen by all readers and by primary outputs; a
*branch* fault overrides the value seen by one specific gate input pin
only.

Execution itself is pluggable (:mod:`repro.gates.backends`): the engine
binds one backend per instance -- the verbatim ``python_loop``, the
levelized ``fused`` default, the optional ``numba`` JIT, or the
``reference`` interpreter -- selected by the ``backend=`` keyword, the
``REPRO_BACKEND`` environment variable, or the registry default, in
that order.  All backends are bit-identical on every path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.gates.backends import (
    AUTO_BACKEND,
    Backend,
    FaultGroup,
    OverridePlan,
    create_backend,
    resolve_backend_name,
)
from repro.gates.compile import CompiledNetlist, compile_netlist
from repro.gates.faults import (
    StuckAtFault,
    default_equivalence_groups,
    default_fault_universe,
    resolve_collapse_mode,
    structural_equivalence_groups,
)
from repro.gates.memo import identity_memo
from repro.gates.netlist import Netlist
from repro.obs import events as obs_events
from repro.obs.trace import span as obs_span

Value = Union[int, np.ndarray]

LANES = 64
ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_SHIFTS = np.arange(LANES, dtype=np.uint64)

#: Exhaustive packing refuses input counts beyond this (2**24 vectors).
MAX_EXHAUSTIVE_INPUTS = 24


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 1-d 0/1 array into uint64 words, 64 vectors per word."""
    bits = np.asarray(bits, dtype=np.uint64)
    n = bits.shape[0]
    n_words = (n + LANES - 1) // LANES
    if n_words * LANES != n:
        bits = np.concatenate(
            [bits, np.zeros(n_words * LANES - n, dtype=np.uint64)]
        )
    if n_words == 0:
        return np.zeros(0, dtype=np.uint64)
    lanes = bits.reshape(n_words, LANES) << _SHIFTS
    return np.bitwise_or.reduce(lanes, axis=1)


def unpack_bits(words: np.ndarray, n_vectors: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; works on any leading shape."""
    words = np.asarray(words, dtype=np.uint64)
    bits = (words[..., :, None] >> _SHIFTS) & np.uint64(1)
    flat = bits.reshape(*words.shape[:-1], words.shape[-1] * LANES)
    return flat[..., :n_vectors].astype(np.uint8)


@dataclass(frozen=True)
class PackedVectors:
    """A packed test-vector set: one word row per primary input.

    ``words[k]`` holds the bit stream of the ``k``-th primary input (in
    compiled/declared order) across all vectors.
    """

    words: np.ndarray  # (n_inputs, n_words) uint64
    n_vectors: int

    @property
    def n_words(self) -> int:
        return self.words.shape[1]

    @property
    def tail_mask(self) -> np.uint64:
        """Mask of valid bits in the final word."""
        rem = self.n_vectors % LANES
        if rem == 0:
            return ALL_ONES
        return np.uint64((1 << rem) - 1)

    def word_slice(self, lo: int, hi: int) -> "PackedVectors":
        """Sub-range of whole words ``[lo, hi)`` as a new packed set."""
        hi = min(hi, self.n_words)
        n = min(self.n_vectors - lo * LANES, (hi - lo) * LANES)
        return PackedVectors(self.words[:, lo:hi], n)


def exhaustive_words(n_inputs: int) -> PackedVectors:
    """All ``2**n_inputs`` combinations, packed, without materialising
    per-vector uint8 arrays.

    Vector ``v`` assigns bit ``k`` of ``v`` to input ``k`` -- the same
    convention as ``NetlistSimulator.truth_table``.
    """
    if n_inputs > MAX_EXHAUSTIVE_INPUTS:
        raise SimulationError(
            f"exhaustive packing of {n_inputs} inputs is too large"
        )
    n_vectors = 1 << n_inputs
    n_words = max(1, n_vectors >> 6)
    return PackedVectors(exhaustive_word_range(n_inputs, 0, n_words), n_vectors)


def exhaustive_word_range(n_inputs: int, word_lo: int, word_hi: int) -> np.ndarray:
    """Words ``[word_lo, word_hi)`` of the exhaustive sweep, one row per input.

    The full exhaustive set over ``n_inputs`` primary inputs spans
    ``max(1, 2**(n_inputs - 6))`` uint64 words; this produces any
    contiguous slice of it without materialising the rest, which is what
    lets wide sweeps (e.g. the 2**32-vector n = 16 operand space) stream
    through a fixed-size working set.  Bit conventions match
    :func:`exhaustive_words`: vector ``v`` assigns bit ``k`` of ``v`` to
    input ``k``; when ``n_inputs < 6`` the lanes beyond ``2**n_inputs``
    are phantom vectors the caller must mask off (see
    :attr:`PackedVectors.tail_mask`).
    """
    total_words = max(1, (1 << n_inputs) >> 6) if n_inputs < 63 else 1 << (n_inputs - 6)
    if not (0 <= word_lo <= word_hi <= total_words):
        raise SimulationError(
            f"word range [{word_lo}, {word_hi}) outside the "
            f"{total_words}-word exhaustive sweep of {n_inputs} inputs"
        )
    n_words = word_hi - word_lo
    rows = np.empty((n_inputs, n_words), dtype=np.uint64)
    lane = np.arange(LANES, dtype=np.uint64)
    idx = np.arange(word_lo, word_hi, dtype=np.uint64)
    for k in range(n_inputs):
        if k < 6:
            pattern = np.bitwise_or.reduce(
                ((lane >> np.uint64(k)) & np.uint64(1)) << lane
            )
            rows[k] = pattern
        else:
            rows[k] = np.where(
                (idx >> np.uint64(k - 6)) & np.uint64(1) == 1, ALL_ONES, np.uint64(0)
            )
    return rows


def exhaustive_field_mask(
    n_inputs: int, field_lo: int, field_hi: int, word_lo: int, word_hi: int
) -> np.ndarray:
    """Valid-lane masks excluding vectors whose ``[field_lo, field_hi)``
    bits are all zero.

    Returns one uint64 per word of ``[word_lo, word_hi)`` in the
    exhaustive sweep of ``n_inputs`` (conventions as
    :func:`exhaustive_word_range`): lane ``v % 64`` of word ``v // 64``
    is set iff vector ``v`` assigns a non-zero value to the input field.
    This is how masked operand sweeps restrict an exhaustive universe --
    e.g. the divider's Table 2 architecture drives ``b = v >> width``
    through inputs ``[width, 2*width)`` and must exclude zero divisors.
    The mask is simply the OR of the field's input rows, so it composes
    with :attr:`PackedVectors.tail_mask` for sub-word sweeps.
    """
    if not (0 <= field_lo < field_hi <= n_inputs):
        raise SimulationError(
            f"field [{field_lo}, {field_hi}) outside the {n_inputs} sweep inputs"
        )
    rows = exhaustive_word_range(n_inputs, word_lo, word_hi)[field_lo:field_hi]
    return np.bitwise_or.reduce(rows, axis=0)


# 8-bit popcount lookup, the fallback when NumPy lacks ``bitwise_count``
# (added in NumPy 2.0).
_POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Total set bits along the last axis of a uint64 word array.

    One packed word row (64 vectors per word) reduces to an exact vector
    count, which is how the batched coverage sweeps turn per-vector
    classification masks into situation tallies without ever unpacking.
    Returns int64 counts with the last axis summed away.
    """
    words = np.asarray(words, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return _POP8[as_bytes].sum(axis=-1, dtype=np.int64)


#: Bounds of the auto-sized fault-matrix working-set budget (bytes).
#: The budget caps ``n_nets * (fault_chunk + 1) * word_chunk`` uint64
#: cells per evaluation chunk; chunking never changes any count, so the
#: bounds only trade worker memory against per-chunk overhead.
GATE_MATRIX_BUDGET_MIN = 4 << 20
GATE_MATRIX_BUDGET_MAX = 128 << 20
#: Word-chunk length the auto-sized budget aims to afford: big enough
#: that per-chunk Python overhead amortises, small enough to stay cache
#: friendly on the netlists that actually need chunking.
GATE_MATRIX_TARGET_WORDS = 256
#: Environment override (bytes) of the auto-sized budget.
GATE_MATRIX_BUDGET_ENV = "REPRO_GATE_MATRIX_BUDGET"


def resolve_matrix_budget(row_cells: int, budget: Optional[int] = None) -> int:
    """Fault-matrix working-set budget (bytes) for one evaluation chunk.

    ``row_cells`` is the uint64 cell count of one word column of the
    matrix -- ``n_nets * (fault_chunk + 1)`` -- so the budget scales
    with the netlist instead of pinning every netlist to one fixed
    constant: small netlists stop over-allocating, the big unrolled
    mul/div architectures get chunks long enough to amortise per-chunk
    overhead.  Resolution order: explicit ``budget`` argument, then the
    ``REPRO_GATE_MATRIX_BUDGET`` environment variable (bytes), then the
    auto size ``row_cells * 8 * GATE_MATRIX_TARGET_WORDS`` clamped to
    ``[GATE_MATRIX_BUDGET_MIN, GATE_MATRIX_BUDGET_MAX]``.
    """
    if budget is None:
        env = os.environ.get(GATE_MATRIX_BUDGET_ENV)
        if env:
            try:
                budget = int(env)
            except ValueError:
                raise SimulationError(
                    f"{GATE_MATRIX_BUDGET_ENV}={env!r} is not a byte count"
                ) from None
    if budget is not None:
        return max(1, int(budget))
    auto = int(row_cells) * 8 * GATE_MATRIX_TARGET_WORDS
    return min(GATE_MATRIX_BUDGET_MAX, max(GATE_MATRIX_BUDGET_MIN, auto))


def matrix_word_chunk(
    row_cells: int, word_chunk: int, budget: Optional[int] = None
) -> int:
    """Clamp a requested ``word_chunk`` to the resolved matrix budget."""
    resolved = resolve_matrix_budget(row_cells, budget)
    return max(8, min(max(1, word_chunk), resolved // (8 * max(1, row_cells))))


#: Backward-compatible alias: the plan now lives with the backends.
_OverridePlan = OverridePlan


@dataclass
class StuckAtCampaignResult:
    """Outcome of a batched stuck-at campaign.

    ``detected[i]`` / ``first_detected[i]`` refer to ``faults[i]``;
    ``first_detected`` is the 0-based index of the earliest detecting
    vector, ``-1`` for undetected faults.  ``groups`` are the structural
    equivalence classes (tuples of fault indices), each represented by
    a single fault -- simulated directly, or (under dominance
    collapsing) inferred from its dominated predecessors, in which case
    ``first_detected`` is a valid detecting vector but not necessarily
    the earliest one.
    """

    netlist_name: str
    faults: Tuple[StuckAtFault, ...]
    detected: np.ndarray
    first_detected: np.ndarray
    n_vectors: int
    n_simulated_runs: int
    groups: Tuple[Tuple[int, ...], ...]

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    @property
    def detected_count(self) -> int:
        return int(np.sum(self.detected))

    @property
    def coverage(self) -> float:
        """Detected fraction of the fault universe."""
        return self.detected_count / self.n_faults if self.n_faults else 1.0

    def classification(self, index: int) -> str:
        return "detected" if self.detected[index] else "undetected"

    def classifications(self) -> List[str]:
        return [self.classification(i) for i in range(self.n_faults)]

    def detected_faults(self) -> List[StuckAtFault]:
        return [f for f, d in zip(self.faults, self.detected) if d]

    def undetected_faults(self) -> List[StuckAtFault]:
        return [f for f, d in zip(self.faults, self.detected) if not d]

    def summary(self) -> str:
        return (
            f"{self.netlist_name}: {self.detected_count}/{self.n_faults} faults "
            f"detected over {self.n_vectors} vectors "
            f"({100.0 * self.coverage:.2f}% coverage, "
            f"{len(self.groups)} equivalence groups, "
            f"{self.n_simulated_runs} simulated fault runs)"
        )


class BitParallelEngine:
    """Word-parallel evaluator bound to one :class:`CompiledNetlist`.

    Evaluation itself is delegated to a pluggable execution backend
    (:mod:`repro.gates.backends`): ``backend=`` selects one by name,
    falling back to the ``REPRO_BACKEND`` environment variable and
    then the registry default.  All backends are bit-identical, so the
    choice only affects speed.
    """

    def __init__(
        self, compiled: CompiledNetlist, backend: Optional[str] = None
    ) -> None:
        self.compiled = compiled
        resolved = resolve_backend_name(backend, allow_auto=True)
        if resolved == AUTO_BACKEND:
            from repro.gates.tune import resolve_plan

            resolved = resolve_plan(compiled).backend
        self.backend_name = resolved
        self.backend: Backend = create_backend(self.backend_name, compiled)
        self._input_ids = [int(i) for i in compiled.input_ids]
        self._output_ids = [int(i) for i in compiled.output_ids]
        self._exhaustive: Optional[PackedVectors] = None
        # First-round campaign plans for the default collapsed universe,
        # rebuilt only when the memoised groups tuple changes identity.
        self._round_plans: Optional[Tuple[int, Dict[Tuple[int, int], OverridePlan]]] = None
        # First-round sparse schedule (batches + plans) for the default
        # collapsed universe, same identity-keyed lifetime.
        # Sparse-sweep schedule cache: (id(groups), active classes,
        # rows-per-batch) -> (batches, plans).  Only default-universe
        # rounds are cached (their groups tuple is memoised and alive,
        # so the id cannot be recycled); FIFO-bounded.
        self._sparse_rounds: Dict[
            Tuple[int, Tuple[int, ...], int], Tuple[List, List[OverridePlan]]
        ] = {}

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------
    def pack_inputs(self, inputs: Mapping[str, Value]) -> Tuple[PackedVectors, bool]:
        """Validate, broadcast and pack an input assignment.

        Returns ``(packed, scalar)`` where ``scalar`` is True when every
        input was 0-d (callers unpack results back to 0-d arrays).
        """
        arrays: List[np.ndarray] = []
        length: Optional[int] = None
        names = self.compiled.source.primary_inputs
        for name in names:
            if name not in inputs:
                raise SimulationError(f"missing assignment for primary input {name!r}")
            arr = np.asarray(inputs[name], dtype=np.uint8)
            if arr.ndim > 1:
                raise SimulationError(
                    f"input {name!r} must be scalar or 1-d, got shape {arr.shape}"
                )
            if np.any(arr > 1):
                raise SimulationError(f"input {name!r} contains non-binary values")
            if arr.ndim == 1:
                if length is None:
                    length = arr.shape[0]
                elif arr.shape[0] != length:
                    raise SimulationError(
                        f"input {name!r} length {arr.shape[0]} != {length}"
                    )
            arrays.append(arr)
        scalar = length is None
        n_vectors = 1 if scalar else length
        n_words = (n_vectors + LANES - 1) // LANES
        words = np.empty((len(arrays), n_words), dtype=np.uint64)
        for k, arr in enumerate(arrays):
            if arr.ndim == 0:
                words[k] = ALL_ONES if int(arr) else np.uint64(0)
            else:
                words[k] = pack_bits(arr)
        return PackedVectors(words, n_vectors), scalar

    def exhaustive(self) -> PackedVectors:
        """Packed exhaustive vector set over the primary inputs.

        Cached per engine, but only while the packed set fits the
        netlist's auto-sized matrix budget
        (:func:`resolve_matrix_budget`): wide-netlist engines held by
        the per-netlist simulator cache would otherwise pin arrays far
        larger than any evaluation chunk.  Oversized sets are rebuilt
        per call instead (the builder is a cheap streaming kernel).
        """
        if self._exhaustive is not None:
            return self._exhaustive
        packed = exhaustive_words(self.compiled.n_inputs)
        if packed.words.nbytes <= resolve_matrix_budget(self.compiled.n_nets):
            self._exhaustive = packed
        return packed

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def run_words(
        self, packed: PackedVectors, fault: Optional[StuckAtFault] = None
    ) -> np.ndarray:
        """Evaluate every net; returns a ``(n_nets, n_words)`` matrix."""
        if fault is not None:
            plan = OverridePlan(self.compiled, [fault])
            return self.backend.run_matrix(packed.words, plan, 1)[:, 0, :].copy()
        return self.backend.run_words(packed.words)

    def _run_matrix(
        self, words: np.ndarray, plan: OverridePlan, n_faults: int
    ) -> np.ndarray:
        """Fault-major evaluation, ``(n_nets, n_faults, n_words)``.

        Thin delegate to the bound backend's matrix kernel; the result
        may be a backend-workspace view, valid until the next call.
        """
        return self.backend.run_matrix(words, plan, n_faults)

    def output_words(
        self, packed: PackedVectors, fault: Optional[StuckAtFault] = None
    ) -> np.ndarray:
        """Primary-output rows only, ``(n_outputs, n_words)``."""
        return self.run_words(packed, fault)[self._output_ids]

    def truth_tables(
        self, faults: Sequence[StuckAtFault], fault_chunk: int = 128
    ) -> np.ndarray:
        """Exhaustive faulty truth tables, ``(n_faults, 2**n, n_outputs)``.

        One fault-matrix pass per chunk replaces ``n_faults`` separate
        interpreter walks; column order matches ``primary_outputs``.
        """
        packed = self.exhaustive()
        out_ids = self._output_ids
        tables = np.empty(
            (len(faults), packed.n_vectors, len(out_ids)), dtype=np.uint8
        )
        for lo in range(0, len(faults), fault_chunk):
            batch = faults[lo : lo + fault_chunk]
            plan = OverridePlan(self.compiled, batch)
            out = self.backend.run_outputs(packed.words, plan, len(batch))
            bits = unpack_bits(out, packed.n_vectors)  # (n_out, B, V)
            tables[lo : lo + len(batch)] = np.transpose(bits, (1, 2, 0))
        return tables

    def run_fault_groups(
        self, words: np.ndarray, groups: Sequence[FaultGroup]
    ) -> np.ndarray:
        """Primary outputs for a batch of multi-site fault groups.

        ``words`` is a packed input matrix ``(n_inputs, n_words)`` (64
        vectors per uint64 word, rows in compiled input order -- see
        :func:`exhaustive_word_range`).  Each entry of ``groups`` is one
        :class:`StuckAtFault` or a sequence of faults injected together,
        e.g. the same cell-level fault replicated into every copy of a
        functional unit in a test architecture.  Returns a
        ``(n_outputs, len(groups) + 1, n_words)`` matrix whose last row
        is the shared fault-free (golden) run; all groups advance through
        the gate program together, one word-wide NumPy op per gate.
        """
        words = self._check_input_words(words)
        plan = OverridePlan(self.compiled, groups)
        return self.backend.run_outputs(words, plan, len(groups) + 1)

    def detect_words(
        self, words: np.ndarray, groups: Sequence[FaultGroup]
    ) -> np.ndarray:
        """Detection words of a fault-group batch vs the fault-free run.

        Returns ``(len(groups), n_words)``: lane ``v % 64`` of word
        ``v // 64`` in row ``r`` is set iff some primary output differs
        from the golden run for vector ``v`` under group ``r``.  This is
        the reduction campaigns, fault dictionaries and ATPG consume;
        going through the backend kernel lets the ``fused`` backend
        evaluate only tainted row prefixes instead of the full matrix.
        """
        words = self._check_input_words(words)
        plan = OverridePlan(self.compiled, groups)
        return self.backend.run_detect(words, plan, len(groups))

    def _check_input_words(self, words: np.ndarray) -> np.ndarray:
        words = np.asarray(words, dtype=np.uint64)
        if words.ndim != 2 or words.shape[0] != self.compiled.n_inputs:
            raise SimulationError(
                f"expected ({self.compiled.n_inputs}, n_words) input words, "
                f"got shape {words.shape}"
            )
        return words

    # ------------------------------------------------------------------
    # Batched fault campaign
    # ------------------------------------------------------------------
    def campaign(
        self,
        packed: Optional[PackedVectors] = None,
        faults: Optional[Sequence[StuckAtFault]] = None,
        collapse: Union[bool, str] = True,
        fault_dropping: bool = True,
        word_chunk: Optional[int] = None,
        fault_chunk: Optional[int] = None,
        sparse: Optional[bool] = None,
    ) -> StuckAtCampaignResult:
        """Simulate a stuck-at universe against one shared golden run.

        ``packed`` defaults to the exhaustive vector set; ``faults`` to
        the full stem+branch universe.  ``collapse`` selects the static
        collapsing mode (:func:`repro.gates.faults.resolve_collapse_mode`):
        ``"equivalence"`` / ``True`` (default) simulates one
        representative per structural equivalence class and broadcasts
        its verdict; ``"dominance"`` further skips dominated gate-output
        classes up front (:mod:`repro.analysis.collapse`), infers their
        detection from their predecessors' verdicts and residually
        simulates only those whose predecessors all came back
        undetected; ``"none"`` / ``False`` simulates every fault.  The
        ``detected`` array and every classification are bit-identical
        across all three modes; dominance only weakens
        ``first_detected`` for *inferred* classes to "a valid detecting
        vector" rather than the earliest one.  With ``fault_dropping``
        (default) faults detected in an earlier vector chunk drop out
        of later chunks.  Chunk sizes resolve through
        :func:`repro.gates.tune.resolve_chunking` (keyword >
        ``REPRO_WORD_CHUNK``/``REPRO_FAULT_CHUNK`` env > 512/64) and
        never change any classification.

        ``sparse`` selects the cone-sparse execution tier
        (:mod:`repro.gates.sparse`): fault batches are clustered by
        fan-out cone similarity and the backend walks only the union
        cone of each batch, with a dead-effect early exit that skips
        the rest of a word chunk once every fault of a batch is
        detected.  ``None`` (default) resolves through
        :func:`repro.gates.tune.resolve_sparse` (``REPRO_SPARSE`` env,
        then the cone-density heuristic).  The ``detected`` array and
        ``first_detected`` witnesses are bit-identical to the dense
        sweep on every backend; only ``n_simulated_runs`` (a work
        counter) and speed differ.
        """
        with obs_span(
            "campaign",
            netlist=self.compiled.source.name,
            backend=self.backend.name,
        ):
            result = self._campaign_impl(
                packed=packed,
                faults=faults,
                collapse=collapse,
                fault_dropping=fault_dropping,
                word_chunk=word_chunk,
                fault_chunk=fault_chunk,
                sparse=sparse,
            )
            obs_events.emit(
                obs_events.CAMPAIGN_COMPLETED,
                netlist=result.netlist_name,
                backend=self.backend.name,
                n_faults=len(result.faults),
                n_vectors=result.n_vectors,
                n_simulated_runs=result.n_simulated_runs,
            )
        return result

    def _campaign_impl(
        self,
        packed: Optional[PackedVectors],
        faults: Optional[Sequence[StuckAtFault]],
        collapse: Union[bool, str],
        fault_dropping: bool,
        word_chunk: Optional[int],
        fault_chunk: Optional[int],
        sparse: Optional[bool] = None,
    ) -> StuckAtCampaignResult:
        from repro.gates.tune import resolve_chunking, resolve_sparse

        mode = resolve_collapse_mode(collapse)
        word_chunk, fault_chunk = resolve_chunking(word_chunk, fault_chunk)
        c = self.compiled
        netlist = c.source
        if packed is None:
            packed = self.exhaustive()
        cmap = None
        # Default universe/groups come back as memoised tuples, zero-copy.
        if faults is None:
            fault_seq: Sequence[StuckAtFault] = default_fault_universe(netlist)
        else:
            fault_seq = tuple(faults)
        if mode == "dominance":
            from repro.analysis.collapse import collapse_faults

            cmap = collapse_faults(
                netlist, faults=None if faults is None else fault_seq, mode=mode
            )
            groups: Sequence[Sequence[int]] = cmap.groups
        elif mode == "equivalence":
            groups = (
                default_equivalence_groups(netlist)
                if faults is None
                else structural_equivalence_groups(netlist, fault_seq)
            )
        else:
            groups = tuple((i,) for i in range(len(fault_seq)))
        n_faults = len(fault_seq)

        detected = np.zeros(n_faults, dtype=bool)
        first_detected = np.full(n_faults, -1, dtype=np.int64)
        n_runs = 0
        out_ids = self._output_ids

        n_words = packed.n_words
        word_chunk = max(1, word_chunk)
        fault_chunk = max(1, fault_chunk)
        use_sparse = resolve_sparse(
            c,
            self.backend_name,
            sparse=sparse,
            n_groups=len(groups),
            n_words=n_words,
            word_chunk=word_chunk,
            fault_chunk=fault_chunk,
        ).sparse
        plan_cache: Optional[Dict[Tuple[int, int], OverridePlan]] = None
        if faults is None and mode == "equivalence":
            # Plans over the memoised universe are identical across
            # campaigns (and across word chunks until faults drop), so
            # cache them per contiguous batch on the engine.
            if self._round_plans is None or self._round_plans[0] != id(groups):
                self._round_plans = (id(groups), {})
            plan_cache = self._round_plans[1]

        def sweep(class_ids: List[int], cache: Optional[Dict]) -> int:
            """Run the word-chunk x fault-chunk loops over ``class_ids``
            (ascending), updating ``detected``/``first_detected``;
            returns the number of representative runs."""
            nonlocal detected, first_detected
            active = list(class_ids)
            runs = 0
            for lo in range(0, max(n_words, 1), word_chunk):
                if not active:
                    break
                if lo == 0 and word_chunk >= n_words:
                    chunk = packed
                else:
                    chunk = packed.word_slice(lo, lo + word_chunk)
                if chunk.n_words == 0:
                    break
                mask = chunk.tail_mask
                base_vector = lo * LANES
                for blo in range(0, len(active), fault_chunk):
                    batch = active[blo : blo + fault_chunk]
                    n_batch = len(batch)
                    plan: Optional[OverridePlan] = None
                    key: Optional[Tuple[int, int]] = None
                    if cache is not None and batch[-1] - batch[0] + 1 == n_batch:
                        # ``active`` is ascending, so equal span and length
                        # mean the batch is exactly [batch[0], batch[-1]].
                        key = (batch[0], n_batch)
                        plan = cache.get(key)
                    if plan is None:
                        reps = [fault_seq[groups[g][0]] for g in batch]
                        plan = OverridePlan(self.compiled, reps)
                        if key is not None:
                            if len(cache) > 64:
                                cache.clear()
                            cache[key] = plan
                    # The backend folds a shared golden run into the
                    # detection words -- no separate fault-free pass needed.
                    diff = self.backend.run_detect(chunk.words, plan, n_batch)
                    runs += n_batch
                    if not out_ids:  # no primary outputs: nothing observable
                        continue
                    if mask != ALL_ONES:
                        diff[:, -1] &= mask
                    nonzero = diff != 0
                    hit_rows = np.nonzero(nonzero.any(axis=1))[0]
                    if hit_rows.size:
                        word_idx = np.argmax(nonzero[hit_rows], axis=1)
                        word = diff[hit_rows, word_idx]
                        # Lowest set bit; exact via float64 log2 of a power of 2.
                        low = word & (np.uint64(0) - word)
                        bit = np.log2(low.astype(np.float64)).astype(np.int64)
                        vectors = base_vector + word_idx * LANES + bit
                        for row, vector in zip(hit_rows.tolist(), vectors.tolist()):
                            for fi in groups[batch[row]]:
                                # Without fault dropping a fault can re-detect
                                # in later chunks; keep the earliest vector.
                                if not detected[fi]:
                                    detected[fi] = True
                                    first_detected[fi] = vector
                if fault_dropping:
                    active = [g for g in active if not detected[groups[g][0]]]
            return runs

        def sweep_sparse(class_ids: List[int], cache: Optional[Dict]) -> int:
            """Cone-sparse variant of ``sweep``: fault classes are
            clustered by fan-out cone (:mod:`repro.gates.sparse`), the
            backend walks only each batch's union cone, and -- under
            fault dropping -- the vector space advances in word slabs
            that start at :data:`~repro.gates.sparse.SPARSE_WORD_SUBCHUNK`
            and double each step.  Most faults fall to the earliest
            vectors, so the cheap first slab retires the bulk of the
            universe (the dead-effect early exit); every wider slab
            re-schedules only the surviving classes, whose union cones
            tighten as the shallow fault sites drop out.  ``detected``
            / ``first_detected`` are bit-identical to the dense sweep
            (slabs advance in vector order, so the earliest witness
            wins exactly as before); only the run counter's
            granularity differs.
            """
            del cache  # cone clustering replaces the contiguous-batch cache
            from repro.analysis.cones import analyze_cones, analyze_gate_cones
            from repro.gates.sparse import (
                SPARSE_CELL_BUDGET,
                SPARSE_WORD_SUBCHUNK,
                build_schedule,
            )

            nonlocal detected, first_detected
            gate_cones = analyze_gate_cones(netlist)
            po_cones = analyze_cones(netlist)
            active = list(class_ids)
            full_default = faults is None and mode == "equivalence"
            runs = 0
            sched_for: Optional[List[int]] = None
            fc_for = 0
            batches: List = []
            plans: List[OverridePlan] = []
            # Without fault dropping no class ever retires, so slab
            # escalation buys nothing: stream plain word chunks.
            slab = SPARSE_WORD_SUBCHUNK if fault_dropping else word_chunk
            lo = 0
            while lo < max(n_words, 1) and active:
                hi = min(lo + slab, n_words)
                if lo == 0 and hi >= n_words:
                    part = packed
                else:
                    part = packed.word_slice(lo, hi)
                if part.n_words == 0:
                    break
                # Rows per kernel call: narrow slabs take every active
                # class in one dense-shaped batch (the probe most
                # faults die in), wide slabs fall back toward the
                # campaign fault chunk to bound the matrix footprint.
                fc_eff = max(
                    fault_chunk, SPARSE_CELL_BUDGET // max(1, part.n_words)
                )
                if sched_for != active or fc_for != fc_eff:
                    # Reschedule when dropping changed the active set
                    # or the slab width changed the batching; default-
                    # universe rounds are cached on the engine like the
                    # dense plan cache (dropping is deterministic, so
                    # repeated campaigns replay the same rounds).
                    ckey = (id(groups), tuple(active), fc_eff)
                    cached = (
                        self._sparse_rounds.get(ckey) if full_default else None
                    )
                    sched_for = list(active)
                    if cached is not None:
                        batches, plans = cached
                    else:
                        sched_groups = [
                            tuple(fault_seq[fi] for fi in groups[g])
                            for g in sched_for
                        ]
                        schedule = build_schedule(
                            c, sched_groups, fc_eff, gate_cones, po_cones
                        )
                        batches = list(schedule.batches)
                        plans = [
                            OverridePlan(
                                self.compiled,
                                [sched_groups[m] for m in b.members],
                            )
                            for b in batches
                        ]
                        if full_default:
                            while len(self._sparse_rounds) >= 32:
                                del self._sparse_rounds[
                                    next(iter(self._sparse_rounds))
                                ]
                            self._sparse_rounds[ckey] = (batches, plans)
                    fc_for = fc_eff
                mask = part.tail_mask
                base_vector = lo * LANES
                for bi, batch in enumerate(batches):
                    # Batches whose sites reach no primary output are
                    # provably undetectable: no kernel runs at all.
                    if not batch.out_ids:
                        continue
                    if fault_dropping and all(
                        detected[groups[sched_for[m]][0]]
                        for m in batch.members
                    ):
                        continue
                    n_batch = len(batch.members)
                    diff = self.backend.run_detect_sparse(
                        part.words,
                        plans[bi],
                        n_batch,
                        batch.gates,
                        batch.out_ids,
                    )
                    runs += n_batch
                    if mask != ALL_ONES:
                        diff[:, -1] &= mask
                    nonzero = diff != 0
                    hit_rows = np.nonzero(nonzero.any(axis=1))[0]
                    if not hit_rows.size:
                        continue
                    word_idx = np.argmax(nonzero[hit_rows], axis=1)
                    word = diff[hit_rows, word_idx]
                    low = word & (np.uint64(0) - word)
                    bit = np.log2(low.astype(np.float64)).astype(np.int64)
                    vectors = base_vector + word_idx * LANES + bit
                    for row, vector in zip(hit_rows.tolist(), vectors.tolist()):
                        for fi in groups[sched_for[batch.members[row]]]:
                            if not detected[fi]:
                                detected[fi] = True
                                first_detected[fi] = vector
                if fault_dropping:
                    active = [g for g in active if not detected[groups[g][0]]]
                lo = hi
                if fault_dropping:
                    slab *= 2
            return runs

        if use_sparse:
            sweep = sweep_sparse

        if cmap is None:
            n_runs += sweep(list(range(len(groups))), plan_cache)
        else:
            n_runs += sweep(sorted(cmap.kept), None)
            # Resolve the dominated-away classes in topological waves:
            # detected as soon as any predecessor is (with the earliest
            # predecessor witness as the detecting vector), residually
            # simulated when every predecessor came back undetected.
            status: Dict[int, bool] = {
                ci: bool(detected[groups[ci][0]]) for ci in cmap.kept
            }
            pending = list(cmap.dropped)
            while pending:
                to_sim: List[int] = []
                deferred: List[int] = []
                for ci in pending:
                    preds = cmap.implied_by[ci]
                    if any(p not in status for p in preds):
                        deferred.append(ci)
                        continue
                    witnesses = [
                        int(first_detected[groups[p][0]])
                        for p in preds
                        if status[p]
                    ]
                    if witnesses:
                        status[ci] = True
                        vector = min(witnesses)
                        for fi in groups[ci]:
                            detected[fi] = True
                            first_detected[fi] = vector
                    else:
                        to_sim.append(ci)
                wave = sorted(to_sim) if to_sim else sorted(deferred)
                if to_sim or (deferred and not to_sim):
                    if not to_sim:
                        deferred = []  # defensive: cannot happen on a DAG
                    n_runs += sweep(wave, None)
                    for ci in wave:
                        status[ci] = bool(detected[groups[ci][0]])
                pending = deferred

        return StuckAtCampaignResult(
            netlist_name=netlist.name,
            faults=tuple(fault_seq),
            detected=detected,
            first_detected=first_detected,
            n_vectors=packed.n_vectors,
            n_simulated_runs=n_runs,
            groups=groups
            if isinstance(groups, tuple)
            else tuple(tuple(g) for g in groups),
        )


# A CompiledNetlist is immutable, so identity alone keys the engine
# caches (empty fingerprint); compile_netlist already maps a netlist
# version to one live compiled object.  One cache per backend name, so
# switching backends never evicts another backend's warm engines.
_ENGINE_CACHES: Dict[str, Callable[[CompiledNetlist], BitParallelEngine]] = {}


def _engine_cache(name: str) -> Callable[[CompiledNetlist], BitParallelEngine]:
    cache = _ENGINE_CACHES.get(name)
    if cache is None:
        cache = identity_memo(lambda _compiled: ())(
            lambda compiled: BitParallelEngine(compiled, backend=name)
        )
        _ENGINE_CACHES[name] = cache
    return cache


def engine_for(netlist: Netlist, backend: Optional[str] = None) -> BitParallelEngine:
    """Cached :class:`BitParallelEngine` for ``netlist``.

    Piggybacks on the compiled-netlist cache: one engine per live
    :class:`CompiledNetlist` *per backend*, so repeated campaigns share
    the resolved backend schedule and the packed exhaustive vector set.
    ``backend`` resolves through the standard precedence (keyword >
    ``REPRO_BACKEND`` env > default); the ``"auto"`` sentinel resolves
    through the shape-aware autotuner to a concrete name first, so the
    cache is always keyed on real backends.
    """
    name = resolve_backend_name(backend, allow_auto=True)
    if name == AUTO_BACKEND:
        from repro.gates.tune import resolve_plan

        name = resolve_plan(compile_netlist(netlist)).backend
    return _engine_cache(name)(compile_netlist(netlist))


def run_stuck_at_campaign(
    netlist: Netlist,
    inputs: Optional[Mapping[str, Value]] = None,
    faults: Optional[Iterable[StuckAtFault]] = None,
    collapse: Union[bool, str] = True,
    fault_dropping: bool = True,
    word_chunk: Optional[int] = None,
    fault_chunk: Optional[int] = None,
    backend: Optional[str] = None,
    sparse: Optional[bool] = None,
) -> StuckAtCampaignResult:
    """One-call batched campaign over ``netlist``'s stuck-at universe.

    ``inputs`` maps primary inputs to 0/1 vectors (all the same length);
    omitted, the exhaustive vector set is used.  ``backend`` selects the
    execution backend -- ``"auto"`` engages the shape-aware autotuner
    (:mod:`repro.gates.tune`); classifications are bit-identical across
    all of them.  ``sparse`` selects the cone-sparse execution tier
    (``None`` auto-resolves; see :meth:`BitParallelEngine.campaign`).
    """
    engine = engine_for(netlist, backend)
    packed: Optional[PackedVectors] = None
    if inputs is not None:
        packed, _ = engine.pack_inputs(inputs)
    fault_list = list(faults) if faults is not None else None
    return engine.campaign(
        packed,
        fault_list,
        collapse=collapse,
        fault_dropping=fault_dropping,
        word_chunk=word_chunk,
        fault_chunk=fault_chunk,
        sparse=sparse,
    )
