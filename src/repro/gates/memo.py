"""Identity-keyed, weakref-evicted memoisation for the gate layer.

Several derivations hang off a :class:`~repro.gates.netlist.Netlist`
(its compiled lowering, the bound simulator/engine, the fault universe
and its equivalence classes).  They all share one caching contract:
keyed on *object identity* plus a structural *fingerprint*, so mutating
the source transparently recomputes while repeated wrapping of an
unchanged object is free, and entries die with their source object via
a weakref callback.  This module is the single implementation of that
contract; keep cache-subtlety fixes here rather than per call site.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, Tuple, TypeVar

_T = TypeVar("_T")
_V = TypeVar("_V")


def identity_memo(
    fingerprint: Callable[[Any], Tuple],
    maxsize: int = 256,
) -> Callable[[Callable[[Any], _V]], Callable[[Any], _V]]:
    """Decorator factory memoising a one-argument derivation.

    ``fingerprint(obj)`` must capture every structural property the
    derived value depends on; a changed fingerprint forces a recompute.
    Cached values are returned as-is -- computes must produce values
    callers treat as immutable.

    Derived values typically hold a strong reference back to their
    subject (a compiled netlist keeps its source), so the weakref alone
    cannot evict; ``maxsize`` bounds the cache with FIFO eviction to
    keep long-running sessions from pinning every subject ever seen.
    """

    def decorate(compute: Callable[[Any], _V]) -> Callable[[Any], _V]:
        cache: Dict[int, Tuple[Callable[[], Any], Tuple, _V]] = {}

        def wrapper(obj: Any) -> _V:
            key = id(obj)
            stamp = fingerprint(obj)
            entry = cache.get(key)
            if entry is not None and entry[0]() is obj and entry[1] == stamp:
                return entry[2]
            value = compute(obj)
            try:
                ref: Callable[[], Any] = weakref.ref(
                    obj, lambda _r, _k=key, _c=cache: _c.pop(_k, None)
                )
            except TypeError:  # pragma: no cover - non-weakrefable subject
                ref = lambda: obj
            if key in cache:
                del cache[key]
            cache[key] = (ref, stamp, value)
            while len(cache) > maxsize:
                del cache[next(iter(cache))]
            return value

        return wrapper

    return decorate


def netlist_fingerprint(netlist: Any) -> Tuple[int, int, int, int]:
    """Structural fingerprint of a netlist for :func:`identity_memo`.

    ``version`` covers builder-API mutations; the lengths also catch
    direct ``gates.append`` / ``primary_outputs.append`` manipulation.
    """
    return (
        netlist.version,
        len(netlist.gates),
        len(netlist.primary_inputs),
        len(netlist.primary_outputs),
    )
