"""Cone-sparse fault schedules over the compiled CSR arrays.

A stuck-at fault can only perturb the gates in the transitive fan-out
cone of its site; every gate outside that cone recomputes the golden
value a campaign already has.  This module turns the per-gate cone
bitmasks of :func:`repro.analysis.cones.analyze_gate_cones` into
*sparse schedules*: fault groups are clustered by cone similarity into
fixed-size batches (keeping the vectorized fault-major matrix shape),
and each batch carries

* ``gates`` -- the ascending compiled gate indices of the union cone,
  the only gates a sparse backend walk needs to evaluate, and
* ``out_ids`` -- the compiled net ids of the primary outputs reachable
  from any member site; outputs outside this set provably carry no
  detection bits, so the XOR/OR detection reduction skips them.

Clustering sorts groups by first-divergence level then cone mask, so
consecutive groups share cone structure and batch union cones stay
close to the per-member cones.  The schedule is consumed by
:meth:`repro.gates.backends.base.Backend.run_detect_sparse` and by the
sparse campaign sweep in :mod:`repro.gates.engine`.

Invariants a schedule guarantees (backends rely on them):

* every branch-site gate of a member is in ``gates``;
* every stem site's *driver* gate is in ``gates`` (stems are applied
  where the net is produced), or the net is a primary input handled by
  the backend's input materialisation;
* ``gates`` is ascending in compiled order, hence topologically sorted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from repro.gates.backends.plan import FaultGroup
from repro.gates.compile import CompiledNetlist
from repro.gates.faults import StuckAtFault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (analysis -> gates)
    from repro.analysis.cones import ConeAnalysis, GateConeAnalysis

_WORD = 64

#: Words in the first detection slab of the sparse campaign sweep.
#: With fault dropping on, the sweep walks the vector space in slabs
#: that start here and double each step: most faults fall to the
#: earliest vectors, so the cheap first probe retires the bulk of the
#: universe and each wider slab re-schedules only the survivors (whose
#: union cones tighten as the shallow fault sites drop out) -- the
#: dead-effect early exit at campaign granularity.
SPARSE_WORD_SUBCHUNK = 64

#: Cell budget (matrix rows x words) of one sparse kernel call: narrow
#: slabs batch every active class into a single dense-shaped call,
#: wide slabs fall back toward the campaign fault chunk.
SPARSE_CELL_BUDGET = 1 << 15


@dataclass(frozen=True)
class SparseBatch:
    """One cone-clustered fault batch of a :class:`SparseSchedule`."""

    members: Tuple[int, ...]  # indices into the scheduled fault-group list
    gates: np.ndarray  # ascending compiled gate ids covering every member cone
    out_ids: Tuple[int, ...]  # compiled net ids of the reachable primary outputs
    cone_fraction: float  # |gates| / n_gates


@dataclass(frozen=True)
class SparseSchedule:
    """Cone-clustered batching of one fault-group list."""

    batches: Tuple[SparseBatch, ...]
    cone_density: float  # mean per-group cone fraction of total gates
    n_gates: int

    @property
    def n_groups(self) -> int:
        return sum(len(b.members) for b in self.batches)


def _as_group(entry: FaultGroup) -> Tuple[StuckAtFault, ...]:
    if isinstance(entry, StuckAtFault):
        return (entry,)
    return tuple(entry)


def _mask_to_indices(mask: np.ndarray, limit: int) -> np.ndarray:
    """Ascending indices of the set bits of one packed uint64 mask row."""
    bits = np.unpackbits(mask.view(np.uint8), bitorder="little")
    idx = np.nonzero(bits)[0]
    return idx[idx < limit].astype(np.int64)


def _site_level(compiled: CompiledNetlist, fault: StuckAtFault) -> int:
    """First-divergence level of one site (mirrors OverridePlan)."""
    if fault.site.is_stem:
        nid = compiled.net_id(fault.site.net)
        lo, hi = compiled.fanout_offsets[nid], compiled.fanout_offsets[nid + 1]
        if hi > lo:
            return int(compiled.gate_levels[compiled.fanout_gates[lo:hi]].min())
        return int(compiled.net_levels[nid])
    gate, _pin = compiled.pin_id(*fault.site.branch)
    return int(compiled.gate_levels[gate])


def fault_cone_mask(
    compiled: CompiledNetlist,
    gate_cones: "GateConeAnalysis",
    fault: StuckAtFault,
) -> np.ndarray:
    """Packed gate mask of everything ``fault`` can perturb.

    Stems cover the net's reader cone *plus the driver gate* (the
    sparse walk applies stem overrides where the net is produced);
    branches cover the faulted gate plus its downstream cone.
    """
    row = np.zeros(gate_cones.net_cone_masks.shape[1], dtype=np.uint64)
    if fault.site.is_stem:
        nid = compiled.net_id(fault.site.net)
        row |= gate_cones.net_cone_masks[nid]
        driver = int(gate_cones.driver_gates[nid])
        if driver >= 0:
            row[driver // _WORD] |= np.uint64(1) << np.uint64(driver % _WORD)
        return row
    gate, _pin = compiled.pin_id(*fault.site.branch)
    row |= gate_cones.gate_masks[gate]
    row[gate // _WORD] |= np.uint64(1) << np.uint64(gate % _WORD)
    return row


def _fault_reach_mask(
    compiled: CompiledNetlist,
    cones: "ConeAnalysis",
    fault: StuckAtFault,
) -> np.ndarray:
    if fault.site.is_stem:
        nid = compiled.net_id(fault.site.net)
        return cones.reach_masks[nid]
    gate, _pin = compiled.pin_id(*fault.site.branch)
    return cones.reach_masks[compiled.gate_output_ids[gate]]


def build_schedule(
    compiled: CompiledNetlist,
    fault_groups: Sequence[FaultGroup],
    fault_chunk: int,
    gate_cones: "GateConeAnalysis",
    cones: Optional["ConeAnalysis"] = None,
) -> SparseSchedule:
    """Cluster ``fault_groups`` into cone-similar sparse batches.

    ``fault_chunk`` bounds the batch size exactly like the dense
    campaign sweep, so the fault-major matrix shape (and therefore the
    backend workspace layout) is unchanged.  With ``cones`` the batches
    also carry the restricted primary-output id sets; without it every
    batch reduces over all outputs (still bit-identical, just more
    XOR/OR work).
    """
    n_groups = len(fault_groups)
    n_gates = compiled.n_gates
    gw = max(1, (n_gates + _WORD - 1) // _WORD)
    ow = max(1, (compiled.n_outputs + _WORD - 1) // _WORD)
    masks = np.zeros((n_groups, gw), dtype=np.uint64)
    reach = np.zeros((n_groups, ow), dtype=np.uint64)
    levels = np.full(n_groups, compiled.depth + 1, dtype=np.int64)
    for i, entry in enumerate(fault_groups):
        for fault in _as_group(entry):
            masks[i] |= fault_cone_mask(compiled, gate_cones, fault)
            if cones is not None:
                reach[i] |= _fault_reach_mask(compiled, cones, fault)
            level = _site_level(compiled, fault)
            if level < levels[i]:
                levels[i] = level
    if cones is None:
        reach[:] = np.uint64(0xFFFFFFFFFFFFFFFF)

    # Primary key: first-divergence level; then the cone mask words, so
    # equal-level groups with overlapping cones land in the same batch.
    keys = [masks[:, w] for w in range(gw - 1, -1, -1)] + [levels]
    order = np.lexsort(keys)

    output_ids = [int(i) for i in compiled.output_ids]
    chunk = max(1, int(fault_chunk))
    batches = []
    for lo in range(0, n_groups, chunk):
        members = order[lo : lo + chunk]
        union = np.bitwise_or.reduce(masks[members], axis=0)
        gates = _mask_to_indices(union, n_gates)
        out_union = np.bitwise_or.reduce(reach[members], axis=0)
        out_ids = tuple(
            output_ids[k] for k in _mask_to_indices(out_union, compiled.n_outputs)
        )
        batches.append(
            SparseBatch(
                members=tuple(int(m) for m in members),
                gates=gates,
                out_ids=out_ids,
                cone_fraction=float(len(gates) / n_gates) if n_gates else 0.0,
            )
        )

    if n_groups and n_gates:
        from repro.analysis.cones import _popcount_rows

        density = float(_popcount_rows(masks).mean() / n_gates)
    else:
        density = 0.0
    return SparseSchedule(
        batches=tuple(batches), cone_density=density, n_gates=n_gates
    )


__all__ = [
    "SPARSE_CELL_BUDGET",
    "SPARSE_WORD_SUBCHUNK",
    "SparseBatch",
    "SparseSchedule",
    "build_schedule",
    "fault_cone_mask",
]
