"""Primitive cell library for gate-level netlists.

Each cell type is a named boolean function of one or more inputs.  The
functions are written against NumPy so that the same definition serves the
scalar simulator (0-d arrays / Python ints) and the vectorised simulator
(1-d arrays spanning many input combinations at once).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Sequence

import numpy as np

from repro.errors import NetlistError


class CellType(str, enum.Enum):
    """Enumeration of the supported primitive gates."""

    AND = "and"
    OR = "or"
    NOT = "not"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    BUF = "buf"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _and(inputs: Sequence[np.ndarray]) -> np.ndarray:
    out = inputs[0]
    for value in inputs[1:]:
        out = out & value
    return out


def _or(inputs: Sequence[np.ndarray]) -> np.ndarray:
    out = inputs[0]
    for value in inputs[1:]:
        out = out | value
    return out


def _xor(inputs: Sequence[np.ndarray]) -> np.ndarray:
    out = inputs[0]
    for value in inputs[1:]:
        out = out ^ value
    return out


def _not(inputs: Sequence[np.ndarray]) -> np.ndarray:
    return inputs[0] ^ 1


def _nand(inputs: Sequence[np.ndarray]) -> np.ndarray:
    return _and(inputs) ^ 1


def _nor(inputs: Sequence[np.ndarray]) -> np.ndarray:
    return _or(inputs) ^ 1


def _xnor(inputs: Sequence[np.ndarray]) -> np.ndarray:
    return _xor(inputs) ^ 1


def _buf(inputs: Sequence[np.ndarray]) -> np.ndarray:
    return inputs[0]


CELL_LIBRARY: Dict[CellType, Callable[[Sequence[np.ndarray]], np.ndarray]] = {
    CellType.AND: _and,
    CellType.OR: _or,
    CellType.XOR: _xor,
    CellType.NOT: _not,
    CellType.NAND: _nand,
    CellType.NOR: _nor,
    CellType.XNOR: _xnor,
    CellType.BUF: _buf,
}

#: Minimum number of inputs accepted by each cell type.
MIN_ARITY: Dict[CellType, int] = {
    CellType.AND: 2,
    CellType.OR: 2,
    CellType.XOR: 2,
    CellType.NAND: 2,
    CellType.NOR: 2,
    CellType.XNOR: 2,
    CellType.NOT: 1,
    CellType.BUF: 1,
}

#: Maximum number of inputs accepted by each cell type (None = unbounded).
MAX_ARITY: Dict[CellType, int] = {
    CellType.NOT: 1,
    CellType.BUF: 1,
}


def cell_function(cell_type: CellType) -> Callable[[Sequence[np.ndarray]], np.ndarray]:
    """Return the boolean function implementing ``cell_type``.

    Raises :class:`~repro.errors.NetlistError` for unknown cell types.
    """
    try:
        return CELL_LIBRARY[cell_type]
    except KeyError:
        raise NetlistError(f"unknown cell type: {cell_type!r}") from None


def validate_arity(cell_type: CellType, n_inputs: int) -> None:
    """Check that a gate of ``cell_type`` may legally have ``n_inputs``."""
    lo = MIN_ARITY.get(cell_type, 1)
    hi = MAX_ARITY.get(cell_type)
    if n_inputs < lo:
        raise NetlistError(
            f"{cell_type} gate requires at least {lo} inputs, got {n_inputs}"
        )
    if hi is not None and n_inputs > hi:
        raise NetlistError(
            f"{cell_type} gate accepts at most {hi} inputs, got {n_inputs}"
        )
