"""Gate-level netlist substrate.

This package models combinational circuits at the structural gate level:

* :mod:`repro.gates.netlist` -- nets, gates and the :class:`Netlist` graph;
* :mod:`repro.gates.cells` -- the primitive cell library (AND, OR, XOR...);
* :mod:`repro.gates.builders` -- parameterised generators for the
  arithmetic blocks used throughout the paper (full adder, ripple-carry
  adder, carry-lookahead adder, subtractor, comparator, array multiplier);
* :mod:`repro.gates.faults` -- the classical single-stuck-at fault
  universe (stems plus fanout branches), fault collapsing;
* :mod:`repro.gates.simulate` -- scalar and NumPy-vectorised logic
  simulation with optional fault injection;
* :mod:`repro.gates.emit` -- structural VHDL emission.

The paper's Section 4.1 test environment models the faulty functional unit
as a single full adder in a chain; the 32-fault universe it quotes
(``num_faults_1bit == 32``) is exactly the stem+branch single-stuck-at
fault list of the standard five-gate full adder built here.
"""

from repro.gates.netlist import Gate, Net, Netlist
from repro.gates.cells import CELL_LIBRARY, CellType, cell_function
from repro.gates.faults import FaultSite, StuckAtFault, enumerate_fault_sites, full_fault_list
from repro.gates.simulate import NetlistSimulator, simulate, simulate_vector
from repro.gates import builders

__all__ = [
    "Gate",
    "Net",
    "Netlist",
    "CELL_LIBRARY",
    "CellType",
    "cell_function",
    "FaultSite",
    "StuckAtFault",
    "enumerate_fault_sites",
    "full_fault_list",
    "NetlistSimulator",
    "simulate",
    "simulate_vector",
    "builders",
]
