"""Gate-level netlist substrate.

This package models combinational circuits at the structural gate level:

* :mod:`repro.gates.netlist` -- nets, gates and the :class:`Netlist` graph
  (with indexed driver/fanout queries and an iterative topological sort);
* :mod:`repro.gates.cells` -- the primitive cell library (AND, OR, XOR...);
* :mod:`repro.gates.builders` -- parameterised generators for the
  arithmetic blocks used throughout the paper (full adder, ripple-carry
  adder, carry-lookahead adder, subtractor, comparator, array
  multiplier, truncated array multiplier, unrolled restoring divider --
  the latter two shared, via cell-instantiation callbacks, with the
  Table 2 test architectures);
* :mod:`repro.gates.faults` -- the classical single-stuck-at fault
  universe (stems plus fanout branches), functional and structural fault
  collapsing;
* :mod:`repro.gates.compile` -- lowering of a netlist to flat integer-id
  arrays (:class:`CompiledNetlist`): per-gate opcode/operand arrays,
  CSR fanout index, cached topological order;
* :mod:`repro.gates.engine` -- the bit-parallel simulator on top of the
  compiled form: 64 test vectors per ``uint64`` word, fault-major
  matrix evaluation (single faults or multi-site fault groups), batched
  stuck-at campaigns with structural collapsing and fault dropping
  (:func:`run_stuck_at_campaign`), and the streaming helpers
  (:func:`engine.exhaustive_word_range`, :func:`engine.popcount_words`)
  that let exhaustive sweeps run in O(chunk) memory;
* :mod:`repro.gates.backends` -- the pluggable execution layer under
  the engine: the ``python_loop`` reference loop, the levelized
  ``fused`` default, the ``threaded`` tile-parallel tier, the optional
  ``numba`` JIT and ``cupy`` GPU walks and the ``reference``
  interpreter, selected per call via ``backend=`` or the
  ``REPRO_BACKEND`` environment variable, all bit-identical;
* :mod:`repro.gates.tune` -- the shape-aware autotuner behind
  ``backend="auto"``: a deterministic cost model (optionally micro-probe
  calibrated) resolving backend, chunk sizes and thread count from the
  campaign shape, with every resolved plan logged for benchmarks;
* :mod:`repro.gates.simulate` -- the public simulation surface:
  :class:`NetlistSimulator` (thin adapter over the compiled engine),
  cached one-shot :func:`simulate` / :func:`simulate_vector`, and the
  original interpreter as :class:`ReferenceSimulator` for differential
  testing;
* :mod:`repro.gates.emit` -- structural VHDL/Verilog emission off the
  compiled lowering.

The paper's Section 4.1 test environment models the faulty functional unit
as a single full adder in a chain; the 32-fault universe it quotes
(``num_faults_1bit == 32``) is exactly the stem+branch single-stuck-at
fault list of the standard five-gate full adder built here.
"""

from repro.gates.netlist import Gate, Net, Netlist
from repro.gates.backends import (
    AUTO_BACKEND,
    BACKEND_ENV,
    DEFAULT_BACKEND,
    Backend,
    backend_unavailable_reason,
    list_backends,
    register_backend,
    resolve_backend_name,
)
from repro.gates.cells import CELL_LIBRARY, CellType, cell_function
from repro.gates.compile import CompiledNetlist, compile_netlist
from repro.gates.engine import (
    BitParallelEngine,
    PackedVectors,
    StuckAtCampaignResult,
    engine_for,
    exhaustive_word_range,
    popcount_words,
    run_stuck_at_campaign,
)
from repro.gates.faults import (
    FaultSite,
    StuckAtFault,
    enumerate_fault_sites,
    full_fault_list,
    structural_equivalence_groups,
)
from repro.gates.simulate import (
    NetlistSimulator,
    ReferenceSimulator,
    get_simulator,
    simulate,
    simulate_vector,
)
from repro.gates.tune import (
    NetlistShape,
    TuningPlan,
    plan_log,
    resolve_chunking,
    resolve_plan,
)
from repro.gates import builders

__all__ = [
    "Gate",
    "Net",
    "Netlist",
    "AUTO_BACKEND",
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "Backend",
    "backend_unavailable_reason",
    "list_backends",
    "register_backend",
    "resolve_backend_name",
    "CELL_LIBRARY",
    "CellType",
    "cell_function",
    "CompiledNetlist",
    "compile_netlist",
    "BitParallelEngine",
    "PackedVectors",
    "StuckAtCampaignResult",
    "engine_for",
    "exhaustive_word_range",
    "popcount_words",
    "run_stuck_at_campaign",
    "FaultSite",
    "StuckAtFault",
    "enumerate_fault_sites",
    "full_fault_list",
    "structural_equivalence_groups",
    "NetlistSimulator",
    "ReferenceSimulator",
    "get_simulator",
    "simulate",
    "simulate_vector",
    "NetlistShape",
    "TuningPlan",
    "plan_log",
    "resolve_chunking",
    "resolve_plan",
    "builders",
]
