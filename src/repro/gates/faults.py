"""Single-stuck-at fault universe for gate-level netlists.

Fault sites follow the classical rule used in structural testing:

* every net *stem* (the driver side of a net) is one site;
* every *fanout branch* (an individual gate input pin) of a net whose
  fanout is two or more is an additional, distinct site.

A net with fanout one contributes a single site (stem and branch are
electrically the same wire).  Primary outputs observe the stem.

Applied to the standard five-gate full adder (two XOR, two AND, one OR),
this rule yields 16 sites -- the nets ``a``, ``b``, ``cin`` and the
internal propagate signal each fan out twice (stem + 2 branches = 3 sites
each, 12 total), the two AND outputs have fanout one (2 sites) and the two
primary outputs add 2 more -- hence 32 single stuck-at faults, exactly the
``num_faults_1bit = 32`` the paper uses to size Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultError
from repro.gates.netlist import Netlist


@dataclass(frozen=True)
class FaultSite:
    """A location where a stuck-at fault may be injected.

    ``branch`` is ``None`` for a stem fault (affects the net everywhere);
    otherwise it is a ``(gate_name, pin_index)`` pair identifying the
    single gate input pin affected.
    """

    net: str
    branch: Optional[Tuple[str, int]] = None

    @property
    def is_stem(self) -> bool:
        return self.branch is None

    def describe(self) -> str:
        if self.branch is None:
            return f"{self.net} (stem)"
        gate, pin = self.branch
        return f"{self.net} -> {gate}.pin{pin} (branch)"


@dataclass(frozen=True)
class StuckAtFault:
    """A single stuck-at fault: ``site`` forced to constant ``value``."""

    site: FaultSite
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise FaultError(f"stuck-at value must be 0 or 1, got {self.value!r}")

    def describe(self) -> str:
        return f"SA{self.value} @ {self.site.describe()}"


def enumerate_fault_sites(netlist: Netlist) -> List[FaultSite]:
    """Enumerate fault sites of ``netlist`` per the stem+branch rule."""
    sites: List[FaultSite] = []
    for net in netlist.nets:
        sites.append(FaultSite(net))
        readers = netlist.fanout(net)
        if len(readers) >= 2:
            for gate, pin in readers:
                sites.append(FaultSite(net, (gate.name, pin)))
    return sites


def full_fault_list(netlist: Netlist) -> List[StuckAtFault]:
    """The uncollapsed single-stuck-at fault list (two faults per site)."""
    faults: List[StuckAtFault] = []
    for site in enumerate_fault_sites(netlist):
        faults.append(StuckAtFault(site, 0))
        faults.append(StuckAtFault(site, 1))
    return faults


def collapse_equivalent(
    netlist: Netlist, faults: List[StuckAtFault], behaviors: Dict[StuckAtFault, bytes]
) -> List[StuckAtFault]:
    """Collapse faults whose full input/output behaviour is identical.

    ``behaviors`` maps each fault to an opaque byte signature (typically
    the concatenated faulty truth table produced by exhaustive
    simulation).  One representative per distinct signature is kept, in
    the original order.  This is *functional* collapsing -- stronger than
    structural equivalence rules -- and is used only for reporting; the
    coverage experiments of the paper count the full 32-fault list.
    """
    seen: Dict[bytes, StuckAtFault] = {}
    kept: List[StuckAtFault] = []
    for fault in faults:
        signature = behaviors[fault]
        if signature not in seen:
            seen[signature] = fault
            kept.append(fault)
    return kept
