"""Single-stuck-at fault universe for gate-level netlists.

Fault sites follow the classical rule used in structural testing:

* every net *stem* (the driver side of a net) is one site;
* every *fanout branch* (an individual gate input pin) of a net whose
  fanout is two or more is an additional, distinct site.

A net with fanout one contributes a single site (stem and branch are
electrically the same wire).  Primary outputs observe the stem.

Applied to the standard five-gate full adder (two XOR, two AND, one OR),
this rule yields 16 sites -- the nets ``a``, ``b``, ``cin`` and the
internal propagate signal each fan out twice (stem + 2 branches = 3 sites
each, 12 total), the two AND outputs have fanout one (2 sites) and the two
primary outputs add 2 more -- hence 32 single stuck-at faults, exactly the
``num_faults_1bit = 32`` the paper uses to size Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import FaultError
from repro.gates.cells import CellType
from repro.gates.memo import identity_memo, netlist_fingerprint
from repro.gates.netlist import Netlist

# Fault campaigns re-derive the fault universe and its equivalence
# classes on every call; both depend only on netlist structure, so they
# are memoised exactly like the compiled lowering (see repro.gates.memo).
_netlist_memo = identity_memo(netlist_fingerprint)


@dataclass(frozen=True)
class FaultSite:
    """A location where a stuck-at fault may be injected.

    ``branch`` is ``None`` for a stem fault (affects the net everywhere);
    otherwise it is a ``(gate_name, pin_index)`` pair identifying the
    single gate input pin affected.
    """

    net: str
    branch: Optional[Tuple[str, int]] = None

    @property
    def is_stem(self) -> bool:
        return self.branch is None

    def describe(self) -> str:
        if self.branch is None:
            return f"{self.net} (stem)"
        gate, pin = self.branch
        return f"{self.net} -> {gate}.pin{pin} (branch)"


@dataclass(frozen=True)
class StuckAtFault:
    """A single stuck-at fault: ``site`` forced to constant ``value``."""

    site: FaultSite
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise FaultError(f"stuck-at value must be 0 or 1, got {self.value!r}")

    def describe(self) -> str:
        return f"SA{self.value} @ {self.site.describe()}"


def enumerate_fault_sites(netlist: Netlist) -> List[FaultSite]:
    """Enumerate fault sites of ``netlist`` per the stem+branch rule."""
    sites: List[FaultSite] = []
    for net in netlist.nets:
        sites.append(FaultSite(net))
        readers = netlist.fanout(net)
        if len(readers) >= 2:
            for gate, pin in readers:
                sites.append(FaultSite(net, (gate.name, pin)))
    return sites


@_netlist_memo
def _full_fault_tuple(netlist: Netlist) -> Tuple[StuckAtFault, ...]:
    faults: List[StuckAtFault] = []
    for site in enumerate_fault_sites(netlist):
        faults.append(StuckAtFault(site, 0))
        faults.append(StuckAtFault(site, 1))
    return tuple(faults)


def full_fault_list(netlist: Netlist) -> List[StuckAtFault]:
    """The uncollapsed single-stuck-at fault list (two faults per site).

    The underlying tuple is memoised per netlist version; callers get a
    fresh list each time.
    """
    return list(_full_fault_tuple(netlist))


def default_fault_universe(netlist: Netlist) -> Tuple[StuckAtFault, ...]:
    """The memoised stem+branch universe as an immutable tuple.

    Zero-copy variant of :func:`full_fault_list` for hot campaign paths.
    """
    return _full_fault_tuple(netlist)


def default_equivalence_groups(netlist: Netlist) -> Tuple[Tuple[int, ...], ...]:
    """Memoised structural-equivalence partition of the default universe.

    Index groups into :func:`default_fault_universe`, zero-copy.
    """
    return _default_equivalence_groups(netlist)


#: Collapse modes accepted by every ``collapse=`` keyword.  ``True`` /
#: ``False`` keep their historical meaning (equivalence / none).
COLLAPSE_MODES = ("none", "equivalence", "dominance")


def resolve_collapse_mode(collapse: Union[bool, str]) -> str:
    """Normalise a ``collapse=`` argument to one of :data:`COLLAPSE_MODES`.

    ``True`` means ``"equivalence"`` (the historical default), ``False``
    means ``"none"``; the mode strings pass through unchanged.
    ``"dominance"`` additionally applies the dominance collapsing of
    :mod:`repro.analysis.collapse` where the caller supports it.
    """
    if collapse is True:
        return "equivalence"
    if collapse is False:
        return "none"
    if isinstance(collapse, str) and collapse in COLLAPSE_MODES:
        return collapse
    raise FaultError(
        f"unknown collapse mode {collapse!r}; expected a bool or one of "
        f"{COLLAPSE_MODES}"
    )


# Fault key: (net, branch-or-None, stuck value).  These key the
# union-find of the structural collapsing below.
_FaultKey = Tuple[str, Optional[Tuple[str, int]], int]


def _fault_key(fault: StuckAtFault) -> _FaultKey:
    return (fault.site.net, fault.site.branch, fault.value)


#: Per cell type: the stuck value on an input pin that forces the output
#: to a constant, and the resulting stuck value on the output.
_CONTROLLING: Dict[CellType, Tuple[int, int]] = {
    CellType.AND: (0, 0),
    CellType.NAND: (0, 1),
    CellType.OR: (1, 1),
    CellType.NOR: (1, 0),
}


@_netlist_memo
def _default_equivalence_groups(netlist: Netlist) -> Tuple[Tuple[int, ...], ...]:
    return tuple(
        tuple(group)
        for group in _compute_equivalence_groups(netlist, _full_fault_tuple(netlist))
    )


def structural_equivalence_groups(
    netlist: Netlist, faults: Optional[Sequence[StuckAtFault]] = None
) -> List[List[int]]:
    """Partition ``faults`` into classical structural-equivalence classes.

    Applies the textbook gate-level rules: a controlling stuck value on
    a gate input pin is equivalent to the corresponding stuck value on
    the gate output (AND: SA0->SA0, NAND: SA0->SA1, OR: SA1->SA1, NOR:
    SA1->SA0) and buffer/inverter input faults map to output faults
    (with inversion for NOT).  A pin reads its *branch* site when the
    net fans out, else the net *stem*; a stem that is also a primary
    output is never merged (the fault stays directly observable there,
    unlike the gate-output fault).  Equivalent faults have identical
    input/output behaviour, so simulating one representative per class
    is exact.

    Returns index groups into ``faults`` (default: the full stuck-at
    list), each ordered and led by its earliest member; group order
    follows first appearance.  The default-universe partition is
    memoised per netlist version.
    """
    if faults is None:
        return [list(group) for group in _default_equivalence_groups(netlist)]
    return _compute_equivalence_groups(netlist, faults)


def _compute_equivalence_groups(
    netlist: Netlist, faults: Sequence[StuckAtFault]
) -> List[List[int]]:
    parent: Dict[_FaultKey, _FaultKey] = {}

    def find(key: _FaultKey) -> _FaultKey:
        parent.setdefault(key, key)
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    def union(a: _FaultKey, b: _FaultKey) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    outputs = set(netlist.primary_outputs)
    for gate in netlist.gates:
        out_net = gate.output
        for pin, net in enumerate(gate.inputs):
            if netlist.fanout_count(net) >= 2:
                branch: Optional[Tuple[str, int]] = (gate.name, pin)
            elif net in outputs:
                continue  # stem observable at a PO: not equivalent
            else:
                branch = None
            if gate.cell_type in _CONTROLLING:
                pin_value, out_value = _CONTROLLING[gate.cell_type]
                union((net, branch, pin_value), (out_net, None, out_value))
            elif gate.cell_type is CellType.BUF:
                union((net, branch, 0), (out_net, None, 0))
                union((net, branch, 1), (out_net, None, 1))
            elif gate.cell_type is CellType.NOT:
                union((net, branch, 0), (out_net, None, 1))
                union((net, branch, 1), (out_net, None, 0))

    groups: Dict[_FaultKey, List[int]] = {}
    order: List[_FaultKey] = []
    for index, fault in enumerate(faults):
        root = find(_fault_key(fault))
        if root not in groups:
            groups[root] = []
            order.append(root)
        groups[root].append(index)
    return [groups[root] for root in order]


def collapse_equivalent(
    netlist: Netlist, faults: List[StuckAtFault], behaviors: Dict[StuckAtFault, bytes]
) -> List[StuckAtFault]:
    """Collapse faults whose full input/output behaviour is identical.

    ``behaviors`` maps each fault to an opaque byte signature (typically
    the concatenated faulty truth table produced by exhaustive
    simulation).  One representative per distinct signature is kept, in
    the original order.  This is *functional* collapsing -- stronger than
    structural equivalence rules -- and is used only for reporting; the
    coverage experiments of the paper count the full 32-fault list.
    """
    seen: Dict[bytes, StuckAtFault] = {}
    kept: List[StuckAtFault] = []
    for fault in faults:
        signature = behaviors[fault]
        if signature not in seen:
            seen[signature] = fault
            kept.append(fault)
    return kept
