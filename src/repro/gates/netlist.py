"""Structural netlist representation.

A :class:`Netlist` is a directed acyclic graph of :class:`Gate` instances
connected by named :class:`Net` objects.  Primary inputs are nets with no
driving gate that are explicitly declared; primary outputs are declared
nets that external logic observes.

The representation keeps an explicit notion of *connections* (gate input
pins): every pin has a stable index, which the fault machinery uses to
distinguish a stuck-at on a fanout branch (one pin) from a stuck-at on a
stem (the net itself).  This distinction is what yields the classical
32-fault universe of the five-gate full adder quoted by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.gates.cells import CellType, validate_arity


@dataclass(frozen=True)
class Net:
    """A single-bit wire identified by name."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass
class Gate:
    """A primitive gate instance.

    Attributes:
        name: unique instance name within the netlist.
        cell_type: the primitive function (AND, XOR...).
        inputs: names of the nets driving each input pin, in pin order.
        output: name of the net driven by this gate.
    """

    name: str
    cell_type: CellType
    inputs: Tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        validate_arity(self.cell_type, len(self.inputs))


@dataclass
class Netlist:
    """A combinational netlist: gates, nets, primary inputs and outputs."""

    name: str
    primary_inputs: List[str] = field(default_factory=list)
    primary_outputs: List[str] = field(default_factory=list)
    gates: List[Gate] = field(default_factory=list)
    _drivers: Dict[str, str] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input net and return its name."""
        if name in self._drivers:
            raise NetlistError(f"net {name!r} already driven by {self._drivers[name]!r}")
        if name in self.primary_inputs:
            raise NetlistError(f"duplicate primary input {name!r}")
        self.primary_inputs.append(name)
        self._drivers[name] = "<input>"
        return name

    def add_gate(
        self,
        cell_type: CellType,
        inputs: Sequence[str],
        output: str,
        name: Optional[str] = None,
    ) -> Gate:
        """Instantiate a gate driving net ``output`` from ``inputs``."""
        if output in self._drivers:
            raise NetlistError(
                f"net {output!r} already driven by {self._drivers[output]!r}"
            )
        gate_name = name if name is not None else f"g{len(self.gates)}_{cell_type.value}"
        gate = Gate(gate_name, cell_type, tuple(inputs), output)
        self.gates.append(gate)
        self._drivers[output] = gate_name
        return gate

    def mark_output(self, name: str) -> str:
        """Declare net ``name`` as a primary output."""
        if name in self.primary_outputs:
            raise NetlistError(f"duplicate primary output {name!r}")
        self.primary_outputs.append(name)
        return name

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nets(self) -> List[str]:
        """All net names, inputs first, then gate outputs in gate order."""
        seen = dict.fromkeys(self.primary_inputs)
        for gate in self.gates:
            seen.setdefault(gate.output, None)
            for net in gate.inputs:
                seen.setdefault(net, None)
        return list(seen)

    def driver_of(self, net: str) -> Optional[Gate]:
        """Return the gate driving ``net``, or None for primary inputs."""
        for gate in self.gates:
            if gate.output == net:
                return gate
        return None

    def fanout(self, net: str) -> List[Tuple[Gate, int]]:
        """Return (gate, pin_index) pairs reading ``net``."""
        readers: List[Tuple[Gate, int]] = []
        for gate in self.gates:
            for pin, source in enumerate(gate.inputs):
                if source == net:
                    readers.append((gate, pin))
        return readers

    def fanout_count(self, net: str) -> int:
        """Number of gate input pins reading ``net`` (PO counts as 0)."""
        return sum(1 for gate in self.gates for source in gate.inputs if source == net)

    # ------------------------------------------------------------------
    # Validation / ordering
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`NetlistError` on structural problems."""
        driven = set(self.primary_inputs) | {g.output for g in self.gates}
        for gate in self.gates:
            for net in gate.inputs:
                if net not in driven:
                    raise NetlistError(
                        f"gate {gate.name!r} reads undriven net {net!r}"
                    )
        for net in self.primary_outputs:
            if net not in driven:
                raise NetlistError(f"primary output {net!r} is undriven")
        self.topological_gates()  # raises on combinational cycles

    def topological_gates(self) -> List[Gate]:
        """Return gates sorted so every gate follows its input drivers.

        Raises :class:`NetlistError` if the netlist has a combinational
        cycle.
        """
        producer: Dict[str, Gate] = {g.output: g for g in self.gates}
        order: List[Gate] = []
        state: Dict[str, int] = {}  # 0 unvisited, 1 visiting, 2 done

        def visit(gate: Gate) -> None:
            mark = state.get(gate.name, 0)
            if mark == 2:
                return
            if mark == 1:
                raise NetlistError(f"combinational cycle through gate {gate.name!r}")
            state[gate.name] = 1
            for net in gate.inputs:
                upstream = producer.get(net)
                if upstream is not None:
                    visit(upstream)
            state[gate.name] = 2
            order.append(gate)

        for gate in self.gates:
            visit(gate)
        return order

    def stats(self) -> Dict[str, int]:
        """Simple size statistics (gate count per type, net count)."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.cell_type.value] = counts.get(gate.cell_type.value, 0) + 1
        counts["gates"] = len(self.gates)
        counts["nets"] = len(self.nets)
        counts["inputs"] = len(self.primary_inputs)
        counts["outputs"] = len(self.primary_outputs)
        return counts


def merge_netlists(name: str, parts: Iterable[Netlist], prefix: bool = True) -> Netlist:
    """Flatten several netlists into one, prefixing names to avoid clashes.

    Nets with identical names across parts are *not* connected; use
    explicit stitching (build composite circuits via the builder API
    instead) -- this helper exists for size accounting and emission of
    multi-unit designs.
    """
    merged = Netlist(name)
    for part in parts:
        pre = f"{part.name}__" if prefix else ""
        for net in part.primary_inputs:
            merged.add_input(pre + net)
        for gate in part.gates:
            merged.add_gate(
                gate.cell_type,
                [pre + n for n in gate.inputs],
                pre + gate.output,
                name=pre + gate.name,
            )
        for net in part.primary_outputs:
            merged.mark_output(pre + net)
    return merged
