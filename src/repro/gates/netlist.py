"""Structural netlist representation.

A :class:`Netlist` is a directed acyclic graph of :class:`Gate` instances
connected by named :class:`Net` objects.  Primary inputs are nets with no
driving gate that are explicitly declared; primary outputs are declared
nets that external logic observes.

The representation keeps an explicit notion of *connections* (gate input
pins): every pin has a stable index, which the fault machinery uses to
distinguish a stuck-at on a fanout branch (one pin) from a stuck-at on a
stem (the net itself).  This distinction is what yields the classical
32-fault universe of the five-gate full adder quoted by the paper.

Structural queries (:meth:`Netlist.driver_of`, :meth:`Netlist.fanout`,
:meth:`Netlist.topological_gates`) are backed by lazily-built indices
that are invalidated whenever the netlist grows, so fault-universe
enumeration and compilation stay linear in netlist size instead of
quadratic.  :attr:`Netlist.version` exposes a monotonically increasing
mutation counter that downstream caches (the compiled-netlist cache in
:mod:`repro.gates.compile`, the simulator cache in
:mod:`repro.gates.simulate`) key on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.gates.cells import CellType, validate_arity


@dataclass(frozen=True)
class Net:
    """A single-bit wire identified by name."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass
class Gate:
    """A primitive gate instance.

    Attributes:
        name: unique instance name within the netlist.
        cell_type: the primitive function (AND, XOR...).
        inputs: names of the nets driving each input pin, in pin order.
        output: name of the net driven by this gate.
    """

    name: str
    cell_type: CellType
    inputs: Tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        validate_arity(self.cell_type, len(self.inputs))


@dataclass
class Netlist:
    """A combinational netlist: gates, nets, primary inputs and outputs."""

    name: str
    primary_inputs: List[str] = field(default_factory=list)
    primary_outputs: List[str] = field(default_factory=list)
    gates: List[Gate] = field(default_factory=list)
    _drivers: Dict[str, str] = field(default_factory=dict, repr=False)
    _version: int = field(default=0, repr=False, compare=False)
    _index_state: Optional[Tuple[int, int]] = field(
        default=None, repr=False, compare=False
    )
    _driver_index: Dict[str, Gate] = field(
        default_factory=dict, repr=False, compare=False
    )
    _fanout_index: Dict[str, List[Tuple[Gate, int]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _topo_state: Optional[Tuple[int, int]] = field(
        default=None, repr=False, compare=False
    )
    _topo_cache: List[Gate] = field(default_factory=list, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input net and return its name."""
        if name in self._drivers:
            raise NetlistError(f"net {name!r} already driven by {self._drivers[name]!r}")
        if name in self.primary_inputs:
            raise NetlistError(f"duplicate primary input {name!r}")
        self.primary_inputs.append(name)
        self._drivers[name] = "<input>"
        self._version += 1
        return name

    def add_gate(
        self,
        cell_type: CellType,
        inputs: Sequence[str],
        output: str,
        name: Optional[str] = None,
    ) -> Gate:
        """Instantiate a gate driving net ``output`` from ``inputs``."""
        if output in self._drivers:
            raise NetlistError(
                f"net {output!r} already driven by {self._drivers[output]!r}"
            )
        gate_name = name if name is not None else f"g{len(self.gates)}_{cell_type.value}"
        gate = Gate(gate_name, cell_type, tuple(inputs), output)
        self.gates.append(gate)
        self._drivers[output] = gate_name
        self._version += 1
        return gate

    def mark_output(self, name: str) -> str:
        """Declare net ``name`` as a primary output."""
        if name in self.primary_outputs:
            raise NetlistError(f"duplicate primary output {name!r}")
        self.primary_outputs.append(name)
        self._version += 1
        return name

    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Independent structural copy (edits never alias back).

        Gate objects are duplicated, so :meth:`replace_gate` on the
        copy leaves the original untouched -- the editing primitive the
        incremental campaign machinery
        (:mod:`repro.faults.incremental`) diffs against.
        """
        dup = Netlist(name if name is not None else self.name)
        dup.primary_inputs = list(self.primary_inputs)
        dup.primary_outputs = list(self.primary_outputs)
        dup.gates = [
            Gate(g.name, g.cell_type, tuple(g.inputs), g.output)
            for g in self.gates
        ]
        dup._drivers = dict(self._drivers)
        return dup

    def replace_gate(
        self,
        name: str,
        cell_type: Optional[CellType] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> Gate:
        """Swap the function and/or input wiring of gate ``name``.

        The gate keeps its instance name and its output net (rewiring
        the *output* changes the net universe -- that edit is a remove
        plus an add, not a replacement).  Arity is validated against
        the new cell type and every new input must be a driven net.
        Bumps :attr:`version`, so all downstream caches invalidate.
        """
        for k, gate in enumerate(self.gates):
            if gate.name != name:
                continue
            new_inputs = tuple(gate.inputs) if inputs is None else tuple(inputs)
            for net in new_inputs:
                if net not in self._drivers:
                    raise NetlistError(
                        f"replace_gate({name!r}): input net {net!r} is not driven"
                    )
            new = Gate(
                gate.name,
                gate.cell_type if cell_type is None else cell_type,
                new_inputs,
                gate.output,
            )
            self.gates[k] = new
            self._version += 1
            return new
        raise NetlistError(f"no gate named {name!r}")

    @property
    def version(self) -> int:
        """Monotonic mutation counter, bumped on every structural change.

        Downstream caches key on ``(version, len(gates))`` so that both
        builder-API mutations and direct ``gates.append`` manipulation
        (used by a few structural tests) invalidate stale state.
        """
        return self._version

    def _cache_key(self) -> Tuple[int, int]:
        return (self._version, len(self.gates))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nets(self) -> List[str]:
        """All net names, inputs first, then gate outputs in gate order."""
        seen = dict.fromkeys(self.primary_inputs)
        for gate in self.gates:
            seen.setdefault(gate.output, None)
            for net in gate.inputs:
                seen.setdefault(net, None)
        return list(seen)

    def _ensure_indices(self) -> None:
        """(Re)build the driver/fanout indices if the netlist changed."""
        key = self._cache_key()
        if self._index_state == key:
            return
        drivers: Dict[str, Gate] = {}
        fanouts: Dict[str, List[Tuple[Gate, int]]] = {}
        for gate in self.gates:
            drivers[gate.output] = gate
            for pin, source in enumerate(gate.inputs):
                fanouts.setdefault(source, []).append((gate, pin))
        self._driver_index = drivers
        self._fanout_index = fanouts
        self._index_state = key

    def driver_of(self, net: str) -> Optional[Gate]:
        """Return the gate driving ``net``, or None for primary inputs.

        O(1) after a one-time index build; the index is invalidated by
        :meth:`add_gate` (and any other structural mutation).
        """
        self._ensure_indices()
        return self._driver_index.get(net)

    def fanout(self, net: str) -> List[Tuple[Gate, int]]:
        """Return (gate, pin_index) pairs reading ``net``."""
        self._ensure_indices()
        return list(self._fanout_index.get(net, ()))

    def fanout_count(self, net: str) -> int:
        """Number of gate input pins reading ``net`` (PO counts as 0)."""
        self._ensure_indices()
        return len(self._fanout_index.get(net, ()))

    # ------------------------------------------------------------------
    # Validation / ordering
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`NetlistError` on structural problems."""
        driven = set(self.primary_inputs) | {g.output for g in self.gates}
        for gate in self.gates:
            for net in gate.inputs:
                if net not in driven:
                    raise NetlistError(
                        f"gate {gate.name!r} reads undriven net {net!r}"
                    )
        for net in self.primary_outputs:
            if net not in driven:
                raise NetlistError(f"primary output {net!r} is undriven")
        self.topological_gates()  # raises on combinational cycles

    def topological_gates(self) -> List[Gate]:
        """Return gates sorted so every gate follows its input drivers.

        Uses an iterative Kahn's algorithm, so netlists of arbitrary
        logic depth (e.g. long ripple chains) cannot hit Python's
        recursion limit.  The order is deterministic: among ready gates,
        declaration order wins.  The result is cached until the netlist
        changes.  Raises :class:`NetlistError` if the netlist has a
        combinational cycle.
        """
        key = self._cache_key()
        if self._topo_state == key:
            return list(self._topo_cache)

        gates = self.gates
        n = len(gates)
        producer_index: Dict[str, int] = {g.output: i for i, g in enumerate(gates)}
        indegree = [0] * n
        consumers: List[List[int]] = [[] for _ in range(n)]
        for i, gate in enumerate(gates):
            for net in gate.inputs:
                j = producer_index.get(net)
                if j is not None:
                    indegree[i] += 1
                    consumers[j].append(i)

        ready = deque(i for i in range(n) if indegree[i] == 0)
        order: List[Gate] = []
        while ready:
            i = ready.popleft()
            order.append(gates[i])
            for c in consumers[i]:
                indegree[c] -= 1
                if indegree[c] == 0:
                    ready.append(c)
        if len(order) != n:
            # Walk backwards through unprocessed predecessors until one
            # repeats: that gate is genuinely on a cycle (an unprocessed
            # gate may merely sit downstream of one).
            remaining = {i for i in range(n) if indegree[i] > 0}
            i = next(iter(remaining))
            seen = set()
            while i not in seen:
                seen.add(i)
                i = next(
                    j
                    for net in gates[i].inputs
                    if (j := producer_index.get(net)) in remaining
                )
            raise NetlistError(f"combinational cycle through gate {gates[i].name!r}")
        self._topo_cache = order
        self._topo_state = key
        return list(order)

    def stats(self) -> Dict[str, int]:
        """Simple size statistics (gate count per type, net count)."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.cell_type.value] = counts.get(gate.cell_type.value, 0) + 1
        counts["gates"] = len(self.gates)
        counts["nets"] = len(self.nets)
        counts["inputs"] = len(self.primary_inputs)
        counts["outputs"] = len(self.primary_outputs)
        return counts


def merge_netlists(name: str, parts: Iterable[Netlist], prefix: bool = True) -> Netlist:
    """Flatten several netlists into one, prefixing names to avoid clashes.

    Nets with identical names across parts are *not* connected; use
    explicit stitching (build composite circuits via the builder API
    instead) -- this helper exists for size accounting and emission of
    multi-unit designs.
    """
    merged = Netlist(name)
    for part in parts:
        pre = f"{part.name}__" if prefix else ""
        for net in part.primary_inputs:
            merged.add_input(pre + net)
        for gate in part.gates:
            merged.add_gate(
                gate.cell_type,
                [pre + n for n in gate.inputs],
                pre + gate.output,
                name=pre + gate.name,
            )
        for net in part.primary_outputs:
            merged.mark_output(pre + net)
    return merged
