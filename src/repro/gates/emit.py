"""Structural HDL emission for gate-level netlists.

Used by the examples and by :mod:`repro.hdlgen.testarch` to regenerate
the paper's Section 4.1 test environment artefacts.  The emitted VHDL is
plain structural 1993-style code (entity + architecture with one
concurrent signal assignment per gate) so it can be diffed and inspected;
a Verilog emitter is provided as well.

Both emitters run off the :class:`~repro.gates.compile.CompiledNetlist`
lowering: gate statements follow the compiled topological program, net
names resolve through the interned id arrays (O(1) per lookup, instead
of the O(n) list-membership scans of the dict-netlist walk), and the
``signal``/``wire`` declarations list internal nets in interning order
-- primary inputs first, then first use along the topological program.
``tests/test_gates_emit_golden.py`` pins the emitted bytes for the seed
full adder.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.gates.cells import CellType
from repro.gates.compile import (
    OP_AND,
    OP_COPY,
    OP_OR,
    OP_XOR,
    CompiledNetlist,
    compile_netlist,
)
from repro.gates.netlist import Netlist

#: Inverse of the compiled lowering table: ``(base op, invert)`` is a
#: bijection back onto the primitive cell types.
_CELL_FROM_OP = {
    (OP_AND, False): CellType.AND,
    (OP_AND, True): CellType.NAND,
    (OP_OR, False): CellType.OR,
    (OP_OR, True): CellType.NOR,
    (OP_XOR, False): CellType.XOR,
    (OP_XOR, True): CellType.XNOR,
    (OP_COPY, False): CellType.BUF,
    (OP_COPY, True): CellType.NOT,
}

_VHDL_OPS = {
    CellType.AND: "and",
    CellType.OR: "or",
    CellType.XOR: "xor",
    CellType.NAND: "nand",
    CellType.NOR: "nor",
    CellType.XNOR: "xnor",
}

_VERILOG_OPS = {
    CellType.AND: "&",
    CellType.OR: "|",
    CellType.XOR: "^",
}


def _compiled_gates(
    compiled: CompiledNetlist,
) -> Iterator[Tuple[CellType, List[str], str, str]]:
    """Yield ``(cell type, input nets, output net, gate name)`` in
    compiled (topological) order, resolving names via the interned
    arrays."""
    names = compiled.net_names
    offsets = compiled.operand_offsets
    for g in range(compiled.n_gates):
        cell_type = _CELL_FROM_OP[(int(compiled.base_ops[g]), bool(compiled.inverts[g]))]
        inputs = [names[i] for i in compiled.operands[offsets[g] : offsets[g + 1]]]
        yield cell_type, inputs, names[compiled.gate_output_ids[g]], compiled.gate_names[g]


def _internal_nets(compiled: CompiledNetlist) -> List[str]:
    """Internal net names (not primary I/O), in interning order."""
    io_ids = set(int(i) for i in compiled.input_ids)
    io_ids.update(int(i) for i in compiled.output_ids)
    return [
        name for nid, name in enumerate(compiled.net_names) if nid not in io_ids
    ]


def _vhdl_expr(cell_type: CellType, inputs: List[str]) -> str:
    if cell_type is CellType.NOT:
        return f"not {inputs[0]}"
    if cell_type is CellType.BUF:
        return inputs[0]
    op = _VHDL_OPS[cell_type]
    return f" {op} ".join(inputs)


def to_vhdl(netlist: Netlist, entity: str = None) -> str:
    """Render ``netlist`` as a structural VHDL entity/architecture pair."""
    compiled = compile_netlist(netlist)  # validates on cache miss
    entity = entity or netlist.name
    ports: List[str] = []
    for net in netlist.primary_inputs:
        ports.append(f"    {net} : in  std_logic")
    for net in netlist.primary_outputs:
        ports.append(f"    {net} : out std_logic")
    internal = _internal_nets(compiled)
    lines = [
        "library ieee;",
        "use ieee.std_logic_1164.all;",
        "",
        f"entity {entity} is",
        "  port (",
        ";\n".join(ports),
        "  );",
        f"end entity {entity};",
        "",
        f"architecture structural of {entity} is",
    ]
    if internal:
        lines.append(f"  signal {', '.join(internal)} : std_logic;")
    lines.append("begin")
    for cell_type, inputs, output, name in _compiled_gates(compiled):
        lines.append(f"  {output} <= {_vhdl_expr(cell_type, inputs)};  -- {name}")
    lines.append(f"end architecture structural;")
    return "\n".join(lines) + "\n"


def _verilog_expr(cell_type: CellType, inputs: List[str]) -> str:
    if cell_type is CellType.NOT:
        return f"~{inputs[0]}"
    if cell_type is CellType.BUF:
        return inputs[0]
    if cell_type in (CellType.NAND, CellType.NOR, CellType.XNOR):
        base = {
            CellType.NAND: "&",
            CellType.NOR: "|",
            CellType.XNOR: "^",
        }[cell_type]
        return "~(" + f" {base} ".join(inputs) + ")"
    op = _VERILOG_OPS[cell_type]
    return f" {op} ".join(inputs)


def to_verilog(netlist: Netlist, module: str = None) -> str:
    """Render ``netlist`` as a flat Verilog module of assign statements."""
    compiled = compile_netlist(netlist)  # validates on cache miss
    module = module or netlist.name
    ports = netlist.primary_inputs + netlist.primary_outputs
    lines = [f"module {module}({', '.join(ports)});"]
    for net in netlist.primary_inputs:
        lines.append(f"  input {net};")
    for net in netlist.primary_outputs:
        lines.append(f"  output {net};")
    for net in _internal_nets(compiled):
        lines.append(f"  wire {net};")
    for cell_type, inputs, output, name in _compiled_gates(compiled):
        lines.append(f"  assign {output} = {_verilog_expr(cell_type, inputs)};  // {name}")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
