"""Structural HDL emission for gate-level netlists.

Used by the examples and by :mod:`repro.hdlgen.testarch` to regenerate
the paper's Section 4.1 test environment artefacts.  The emitted VHDL is
plain structural 1993-style code (entity + architecture with one
concurrent signal assignment per gate) so it can be diffed and inspected;
a Verilog emitter is provided as well.
"""

from __future__ import annotations

from typing import List

from repro.gates.cells import CellType
from repro.gates.netlist import Gate, Netlist

_VHDL_OPS = {
    CellType.AND: "and",
    CellType.OR: "or",
    CellType.XOR: "xor",
    CellType.NAND: "nand",
    CellType.NOR: "nor",
    CellType.XNOR: "xnor",
}

_VERILOG_OPS = {
    CellType.AND: "&",
    CellType.OR: "|",
    CellType.XOR: "^",
}


def _vhdl_expr(gate: Gate) -> str:
    if gate.cell_type is CellType.NOT:
        return f"not {gate.inputs[0]}"
    if gate.cell_type is CellType.BUF:
        return gate.inputs[0]
    op = _VHDL_OPS[gate.cell_type]
    return f" {op} ".join(gate.inputs)


def to_vhdl(netlist: Netlist, entity: str = None) -> str:
    """Render ``netlist`` as a structural VHDL entity/architecture pair."""
    netlist.validate()
    entity = entity or netlist.name
    ports: List[str] = []
    for net in netlist.primary_inputs:
        ports.append(f"    {net} : in  std_logic")
    for net in netlist.primary_outputs:
        ports.append(f"    {net} : out std_logic")
    internal = [
        net
        for net in netlist.nets
        if net not in netlist.primary_inputs and net not in netlist.primary_outputs
    ]
    lines = [
        "library ieee;",
        "use ieee.std_logic_1164.all;",
        "",
        f"entity {entity} is",
        "  port (",
        ";\n".join(ports),
        "  );",
        f"end entity {entity};",
        "",
        f"architecture structural of {entity} is",
    ]
    if internal:
        lines.append(f"  signal {', '.join(internal)} : std_logic;")
    lines.append("begin")
    for gate in netlist.topological_gates():
        lines.append(f"  {gate.output} <= {_vhdl_expr(gate)};  -- {gate.name}")
    lines.append(f"end architecture structural;")
    return "\n".join(lines) + "\n"


def _verilog_expr(gate: Gate) -> str:
    if gate.cell_type is CellType.NOT:
        return f"~{gate.inputs[0]}"
    if gate.cell_type is CellType.BUF:
        return gate.inputs[0]
    if gate.cell_type in (CellType.NAND, CellType.NOR, CellType.XNOR):
        base = {
            CellType.NAND: "&",
            CellType.NOR: "|",
            CellType.XNOR: "^",
        }[gate.cell_type]
        return "~(" + f" {base} ".join(gate.inputs) + ")"
    op = _VERILOG_OPS[gate.cell_type]
    return f" {op} ".join(gate.inputs)


def to_verilog(netlist: Netlist, module: str = None) -> str:
    """Render ``netlist`` as a flat Verilog module of assign statements."""
    netlist.validate()
    module = module or netlist.name
    ports = netlist.primary_inputs + netlist.primary_outputs
    lines = [f"module {module}({', '.join(ports)});"]
    for net in netlist.primary_inputs:
        lines.append(f"  input {net};")
    for net in netlist.primary_outputs:
        lines.append(f"  output {net};")
    internal = [
        net
        for net in netlist.nets
        if net not in netlist.primary_inputs and net not in netlist.primary_outputs
    ]
    for net in internal:
        lines.append(f"  wire {net};")
    for gate in netlist.topological_gates():
        lines.append(f"  assign {gate.output} = {_verilog_expr(gate)};  // {gate.name}")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
