"""Parameterised netlist generators for the paper's arithmetic blocks.

The key block is :func:`full_adder` -- the standard five-gate realisation
(two XOR, two AND, one OR) whose stem+branch single-stuck-at fault list
has exactly 32 entries, matching the paper's ``num_faults_1bit = 32``.
Wider units (:func:`ripple_carry_adder`, :func:`array_multiplier`...) are
built by chaining that cell, mirroring the paper's test architecture where
the faulty functional unit is one full adder in the chain.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple

from repro.errors import NetlistError
from repro.gates.cells import CellType
from repro.gates.netlist import Netlist

#: Cell-instantiation callback of the structural lowering helpers:
#: ``cell(position, a, b, cin) -> (sum, carry_out)``.  ``position``
#: identifies the full-adder cell within the unit (``(row, col)`` for
#: the multiplier array, ``(step, index)`` for the unrolled divider).
#: The public builders pass a plain five-gate realisation
#: (:func:`_fa_cell`); the Table 2 test architectures
#: (:mod:`repro.arch.testbench`) pass a callback that instantiates the
#: configurable cell netlist and records the instance tag so cell-level
#: faults can be translated onto it.
CellInstantiator = Callable[[Tuple[int, int], str, str, str], Tuple[str, str]]


def instantiate_cell(
    nl: Netlist, cell: Netlist, tag: str, bindings: Mapping[str, str]
) -> Dict[str, str]:
    """Instantiate the small netlist ``cell`` inside ``nl`` under ``tag``.

    ``bindings`` maps every primary input of ``cell`` to an existing net
    of ``nl``; internal and output nets become ``{tag}_{net}`` and gates
    ``{tag}_{gate}``, with input pin order preserved.  Because pin order
    and gate identity survive flattening, a stuck-at fault expressed on
    the cell netlist can be translated onto the instance (see
    :mod:`repro.arch.testbench`) and behaves exactly as it does in the
    stand-alone cell.  Returns the full cell-net -> flat-net map.
    """
    netmap: Dict[str, str] = {}
    for name in cell.primary_inputs:
        if name not in bindings:
            raise NetlistError(
                f"cell {cell.name!r} input {name!r} is unbound in instance {tag!r}"
            )
        netmap[name] = bindings[name]
    for gate in cell.topological_gates():
        flat_out = f"{tag}_{gate.output}"
        netmap[gate.output] = flat_out
        nl.add_gate(
            gate.cell_type,
            [netmap[n] for n in gate.inputs],
            flat_out,
            name=f"{tag}_{gate.name}",
        )
    return netmap


def half_adder(name: str = "ha") -> Netlist:
    """Half adder: ``s = a ^ b``, ``cout = a & b``."""
    nl = Netlist(name)
    nl.add_input("a")
    nl.add_input("b")
    nl.add_gate(CellType.XOR, ["a", "b"], "s", name="x_sum")
    nl.add_gate(CellType.AND, ["a", "b"], "cout", name="a_carry")
    nl.mark_output("s")
    nl.mark_output("cout")
    return nl


def full_adder(name: str = "fa") -> Netlist:
    """The standard five-gate full adder.

    Gates: ``p = a ^ b``, ``s = p ^ cin``, ``g1 = a & b``,
    ``g2 = p & cin``, ``cout = g1 | g2``.

    Nets ``a``, ``b``, ``cin`` and ``p`` each fan out to two pins, so the
    stem+branch fault-site rule yields 4*3 + 2 + 2 = 16 sites, i.e. 32
    single stuck-at faults.
    """
    nl = Netlist(name)
    nl.add_input("a")
    nl.add_input("b")
    nl.add_input("cin")
    nl.add_gate(CellType.XOR, ["a", "b"], "p", name="x1")
    nl.add_gate(CellType.XOR, ["p", "cin"], "s", name="x2")
    nl.add_gate(CellType.AND, ["a", "b"], "g1", name="a1")
    nl.add_gate(CellType.AND, ["p", "cin"], "g2", name="a2")
    nl.add_gate(CellType.OR, ["g1", "g2"], "cout", name="o1")
    nl.mark_output("s")
    nl.mark_output("cout")
    return nl


def full_adder_xor3(name: str = "fa3") -> Netlist:
    """Full adder with a three-input XOR sum and a mux-style carry.

    Gates: ``s = a ^ b ^ cin`` (one XOR3 gate), ``g = a & b``,
    ``t = a | b``, ``h = cin & t``, ``cout = g | h``.

    Fault sites: ``a`` and ``b`` each fan out to three pins (4 sites
    each), ``cin`` to two (3 sites), internal nets ``g``, ``t``, ``h``
    have fanout one (1 site each) and the outputs ``s``/``cout`` add one
    each -- 16 sites, i.e. the 32 single stuck-at faults of the paper.
    This netlist is the repository default for coverage experiments: its
    fault universe reproduces the paper's Table 2 shape most closely
    (see EXPERIMENTS.md for the calibration study against the five-gate
    variant :func:`full_adder`).
    """
    nl = Netlist(name)
    nl.add_input("a")
    nl.add_input("b")
    nl.add_input("cin")
    nl.add_gate(CellType.XOR, ["a", "b", "cin"], "s", name="x3")
    nl.add_gate(CellType.AND, ["a", "b"], "g", name="a1")
    nl.add_gate(CellType.OR, ["a", "b"], "t", name="o1")
    nl.add_gate(CellType.AND, ["cin", "t"], "h", name="a2")
    nl.add_gate(CellType.OR, ["g", "h"], "cout", name="o2")
    nl.mark_output("s")
    nl.mark_output("cout")
    return nl


def _fa_cell(nl: Netlist, tag: str, a: str, b: str, cin: str) -> Tuple[str, str]:
    """Instantiate one five-gate full-adder cell inside ``nl``.

    Returns the (sum, carry-out) net names.
    """
    p = f"{tag}_p"
    s = f"{tag}_s"
    g1 = f"{tag}_g1"
    g2 = f"{tag}_g2"
    cout = f"{tag}_cout"
    nl.add_gate(CellType.XOR, [a, b], p, name=f"{tag}_x1")
    nl.add_gate(CellType.XOR, [p, cin], s, name=f"{tag}_x2")
    nl.add_gate(CellType.AND, [a, b], g1, name=f"{tag}_a1")
    nl.add_gate(CellType.AND, [p, cin], g2, name=f"{tag}_a2")
    nl.add_gate(CellType.OR, [g1, g2], cout, name=f"{tag}_o1")
    return s, cout


def ripple_carry_adder(width: int, name: str = "rca") -> Netlist:
    """``width``-bit ripple-carry adder with explicit carry-in/out.

    Primary inputs: ``a0..a{w-1}``, ``b0..b{w-1}``, ``cin``.
    Primary outputs: ``s0..s{w-1}``, ``cout``.
    """
    if width < 1:
        raise NetlistError(f"adder width must be >= 1, got {width}")
    nl = Netlist(name)
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    carry = nl.add_input("cin")
    for i in range(width):
        s, carry = _fa_cell(nl, f"fa{i}", a[i], b[i], carry)
        # Rename sum net to the conventional output name via a buffer-free
        # trick: _fa_cell already produced fa{i}_s; expose it directly.
        nl.mark_output(s)
    nl.mark_output(carry)
    return nl


def carry_lookahead_adder(width: int, name: str = "cla") -> Netlist:
    """``width``-bit carry-lookahead adder (single-level lookahead).

    Generates ``g_i = a_i & b_i``, ``p_i = a_i ^ b_i`` and expands
    ``c_{i+1} = g_i | p_i & c_i`` into two-level AND/OR logic.  For large
    widths the product terms grow quadratically, as in a real CLA slice.
    """
    if width < 1:
        raise NetlistError(f"adder width must be >= 1, got {width}")
    nl = Netlist(name)
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    cin = nl.add_input("cin")
    g: List[str] = []
    p: List[str] = []
    for i in range(width):
        gi, pi = f"g{i}", f"p{i}"
        nl.add_gate(CellType.AND, [a[i], b[i]], gi, name=f"gen{i}")
        nl.add_gate(CellType.XOR, [a[i], b[i]], pi, name=f"prop{i}")
        g.append(gi)
        p.append(pi)
    carries = [cin]
    for i in range(width):
        # c_{i+1} = g_i + p_i g_{i-1} + ... + p_i..p_0 c_0
        terms = [g[i]]
        for j in range(i - 1, -1, -1):
            chain = p[j + 1 : i + 1] + [g[j]]
            term = f"t{i}_{j}"
            nl.add_gate(CellType.AND, chain, term, name=f"and_{term}")
            terms.append(term)
        chain0 = p[0 : i + 1] + [cin]
        term0 = f"t{i}_cin"
        nl.add_gate(CellType.AND, chain0, term0, name=f"and_{term0}")
        terms.append(term0)
        cnext = f"c{i + 1}"
        if len(terms) == 1:
            nl.add_gate(CellType.BUF, terms, cnext, name=f"buf_{cnext}")
        else:
            nl.add_gate(CellType.OR, terms, cnext, name=f"or_{cnext}")
        carries.append(cnext)
    for i in range(width):
        nl.add_gate(CellType.XOR, [p[i], carries[i]], f"s{i}", name=f"sum{i}")
        nl.mark_output(f"s{i}")
    nl.mark_output(carries[width])
    return nl


def carry_select_adder(width: int, block: int = 2, name: str = "csa") -> Netlist:
    """``width``-bit carry-select adder with ``block``-bit sections.

    Each section beyond the first is computed twice (carry-in 0 and 1)
    by ripple chains; a mux network driven by the incoming carry picks
    the result -- the classical latency/area trade-off between the
    ripple-carry and lookahead extremes.
    """
    if width < 1:
        raise NetlistError(f"adder width must be >= 1, got {width}")
    if block < 1:
        raise NetlistError(f"block size must be >= 1, got {block}")
    nl = Netlist(name)
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    carry = nl.add_input("cin")
    # The zero/one rails only seed the speculative sections' carry-ins;
    # a single-section adder would leave them floating (and trip the
    # unused-input lint rule), so declare them only when needed.
    if width > block:
        zero = nl.add_input("zero")
        one = nl.add_input("one")

    def mux(tag: str, sel: str, when0: str, when1: str) -> str:
        nsel = f"{tag}_ns"
        t0 = f"{tag}_t0"
        t1 = f"{tag}_t1"
        out = f"{tag}_o"
        nl.add_gate(CellType.NOT, [sel], nsel, name=f"{tag}_inv")
        nl.add_gate(CellType.AND, [nsel, when0], t0, name=f"{tag}_and0")
        nl.add_gate(CellType.AND, [sel, when1], t1, name=f"{tag}_and1")
        nl.add_gate(CellType.OR, [t0, t1], out, name=f"{tag}_or")
        return out

    start = 0
    section = 0
    while start < width:
        end = min(start + block, width)
        if section == 0:
            # First section: plain ripple from the real carry-in.
            local = carry
            for i in range(start, end):
                s_net, local = _fa_cell(nl, f"s{section}_fa{i}", a[i], b[i], local)
                nl.add_gate(CellType.BUF, [s_net], f"s{i}", name=f"obuf{i}")
                nl.mark_output(f"s{i}")
            carry = local
        else:
            # Speculative ripples for carry-in 0 and 1, then select.
            c0, c1 = zero, one
            sums0, sums1 = [], []
            for i in range(start, end):
                s0, c0 = _fa_cell(nl, f"s{section}c0_fa{i}", a[i], b[i], c0)
                s1, c1 = _fa_cell(nl, f"s{section}c1_fa{i}", a[i], b[i], c1)
                sums0.append(s0)
                sums1.append(s1)
            for offset, i in enumerate(range(start, end)):
                out = mux(f"m{section}_{i}", carry, sums0[offset], sums1[offset])
                nl.add_gate(CellType.BUF, [out], f"s{i}", name=f"obuf{i}")
                nl.mark_output(f"s{i}")
            carry = mux(f"mc{section}", carry, c0, c1)
        start = end
        section += 1
    nl.add_gate(CellType.BUF, [carry], "cout", name="obuf_cout")
    nl.mark_output("cout")
    return nl


def ripple_borrow_subtractor(width: int, name: str = "rbs") -> Netlist:
    """``width``-bit subtractor built as ``a + ~b + 1`` on an RCA core.

    This is the paper's ``g`` function realisation: the second operand is
    one's-complemented and the carry-in is tied through the ``cin`` input
    (the caller asserts ``cin = 1`` for two's-complement subtraction).
    """
    if width < 1:
        raise NetlistError(f"subtractor width must be >= 1, got {width}")
    nl = Netlist(name)
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    carry = nl.add_input("cin")
    for i in range(width):
        nb = f"nb{i}"
        nl.add_gate(CellType.NOT, [b[i]], nb, name=f"inv{i}")
        s, carry = _fa_cell(nl, f"fa{i}", a[i], nb, carry)
        nl.mark_output(s)
    nl.mark_output(carry)
    return nl


def equality_comparator(width: int, name: str = "eq") -> Netlist:
    """``width``-bit equality comparator: single output ``eq``."""
    if width < 1:
        raise NetlistError(f"comparator width must be >= 1, got {width}")
    nl = Netlist(name)
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    bits = []
    for i in range(width):
        e = f"e{i}"
        nl.add_gate(CellType.XNOR, [a[i], b[i]], e, name=f"xn{i}")
        bits.append(e)
    if width == 1:
        nl.add_gate(CellType.BUF, bits, "eq", name="buf_eq")
    else:
        nl.add_gate(CellType.AND, bits, "eq", name="and_eq")
    nl.mark_output("eq")
    return nl


def negator(width: int, name: str = "neg") -> Netlist:
    """Two's-complement negator: ``out = ~a + 1`` via an RCA with b=0.

    Implemented as inverters feeding a full-adder chain whose second
    operand is constant 0 and carry-in is the constant-1 input ``one``
    (kept as an input so the block stays purely combinational).
    """
    if width < 1:
        raise NetlistError(f"negator width must be >= 1, got {width}")
    nl = Netlist(name)
    a = [nl.add_input(f"a{i}") for i in range(width)]
    zero = nl.add_input("zero")
    carry = nl.add_input("one")
    for i in range(width):
        na = f"na{i}"
        nl.add_gate(CellType.NOT, [a[i]], na, name=f"inv{i}")
        s, carry = _fa_cell(nl, f"fa{i}", na, zero, carry)
        nl.mark_output(s)
    nl.mark_output(carry)
    return nl


def array_multiplier(width: int, name: str = "mul") -> Netlist:
    """Unsigned ``width x width`` array multiplier (carry-save rows).

    Partial products ``pp[i][j] = a_j & b_i`` are reduced with rows of
    full-adder cells; the output is the low ``2*width`` product bits.
    The structure matches the classical array multiplier so that a single
    faulty cell corrupts a contiguous diagonal of the product, as the
    paper's single-functional-unit model assumes.
    """
    if width < 1:
        raise NetlistError(f"multiplier width must be >= 1, got {width}")
    nl = Netlist(name)
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    zero = nl.add_input("zero")

    pp = [[f"pp{i}_{j}" for j in range(width)] for i in range(width)]
    for i in range(width):
        for j in range(width):
            nl.add_gate(CellType.AND, [a[j], b[i]], pp[i][j], name=f"ppand{i}_{j}")

    # Row 0 passes straight through; subsequent rows add the shifted
    # partial product with a ripple row.  ``sums[j]`` holds the bit of
    # weight (row-1)+j entering the current row; the top element is the
    # previous row's carry-out.
    sums = list(pp[0])
    outputs: List[str] = []
    for i in range(1, width):
        outputs.append(sums[0])  # weight i-1 finalised
        carry = zero
        new_sums: List[str] = []
        for j in range(width):
            upper = sums[j + 1] if j + 1 < len(sums) else zero
            s, carry = _fa_cell(nl, f"fa{i}_{j}", upper, pp[i][j], carry)
            new_sums.append(s)
        new_sums.append(carry)
        sums = new_sums
    outputs.extend(sums)
    for k, net in enumerate(outputs[: 2 * width]):
        if not net.startswith("p_"):
            alias = f"p_{k}"
            nl.add_gate(CellType.BUF, [net], alias, name=f"obuf{k}")
            nl.mark_output(alias)
    return nl


# ----------------------------------------------------------------------
# Structural lowerings mirroring the functional mul/div units
# ----------------------------------------------------------------------
def truncated_multiplier_rows(
    nl: Netlist,
    prefix: str,
    a: List[str],
    b: List[str],
    zero: str,
    cell: CellInstantiator,
) -> List[str]:
    """Lower one truncated ripple-row multiplier array into ``nl``.

    The structure mirrors :class:`repro.arch.multiplier.ArrayMultiplierUnit`
    cell for cell (C ``int`` semantics, ``n x n -> n`` bits, upper half
    and every row's final carry discarded): row 0 is the bare partial
    product ``a & -b0``; row ``i >= 1`` adds ``(a & -b_i) << i`` into the
    running sum through a ripple row of ``n - i`` full-adder cells, the
    cell at ``(row, col)`` combining running-sum bit ``row + col``,
    partial-product bit ``col`` and the row carry.  ``cell`` instantiates
    each full adder (position ``(row, col)``), so the same lowering
    serves the plain netlist builder and the faulty-cell test
    architectures.  Returns the ``n`` product-bit nets.
    """
    width = len(a)
    if len(b) != width:
        raise NetlistError(
            f"multiplier operands must share a width, got {len(a)} and {len(b)}"
        )
    product: List[str] = []
    for j in range(width):
        pp = f"{prefix}_pp0_{j}"
        nl.add_gate(CellType.AND, [a[j], b[0]], pp, name=f"{prefix}_ppand0_{j}")
        product.append(pp)
    for row in range(1, width):
        carry = zero
        for col in range(width - row):
            pp = f"{prefix}_pp{row}_{col}"
            nl.add_gate(
                CellType.AND, [a[col], b[row]], pp, name=f"{prefix}_ppand{row}_{col}"
            )
            # Reading product[row + col] before overwriting is safe: no
            # later cell of this row reads a lower product bit.
            s, carry = cell((row, col), product[row + col], pp, carry)
            product[row + col] = s
    return product


def restoring_divider_steps(
    nl: Netlist,
    prefix: str,
    a: List[str],
    b: List[str],
    zero: str,
    one: str,
    cell: CellInstantiator,
) -> Tuple[List[str], List[str]]:
    """Unroll one restoring divider into ``nl``; returns (quotient, remainder).

    Mirrors :class:`repro.arch.divider.RestoringDividerUnit`: the
    sequential unit reuses one ``width + 1``-cell subtractor chain for
    ``width`` iterations, so the combinational unrolling instantiates the
    chain once per quotient bit -- iteration ``step`` (processing
    dividend bit ``a[step]``, MSB first) shifts the partial remainder
    left, subtracts the divisor through cells ``(step, 0..width)`` and
    keeps the difference when no borrow occurred (mux gates are
    fault-free routing, as in the functional model).  Remainder bit
    ``width`` of each iteration is never read downstream -- the next
    shift pushes it beyond the chain and the unit masks its result -- so
    only bits ``0..width-1`` are latched between iterations, exactly
    reproducing the functional unit's observable behaviour.  ``cell``
    instantiates each full adder, so a faulty cell at chain position
    ``p`` maps onto every iteration's ``(step, p)`` instance.
    """
    width = len(a)
    if len(b) != width:
        raise NetlistError(
            f"divider operands must share a width, got {len(a)} and {len(b)}"
        )
    nb: List[str] = []
    for i in range(width):
        inv = f"{prefix}_nb{i}"
        nl.add_gate(CellType.NOT, [b[i]], inv, name=f"{prefix}_invb{i}")
        nb.append(inv)
    nb.append(one)  # guard bit of the chain-wide one's complement
    remainder = [zero] * width
    quotient = [zero] * width
    for step in range(width - 1, -1, -1):
        shifted = [a[step]] + remainder
        carry = one  # +1 of the two's-complement subtraction
        trial: List[str] = []
        for i in range(width + 1):
            s, carry = cell((step, i), shifted[i], nb[i], carry)
            trial.append(s)
        take = carry  # no borrow: remainder >= divisor, quotient bit set
        ntake = f"{prefix}_s{step}_nt"
        nl.add_gate(CellType.NOT, [take], ntake, name=f"{prefix}_s{step}_ntake")
        nxt: List[str] = []
        for i in range(width):
            t1 = f"{prefix}_s{step}_t{i}"
            t0 = f"{prefix}_s{step}_u{i}"
            out = f"{prefix}_s{step}_r{i}"
            nl.add_gate(CellType.AND, [take, trial[i]], t1, name=f"{prefix}_s{step}_a{i}")
            nl.add_gate(
                CellType.AND, [ntake, shifted[i]], t0, name=f"{prefix}_s{step}_b{i}"
            )
            nl.add_gate(CellType.OR, [t1, t0], out, name=f"{prefix}_s{step}_o{i}")
            nxt.append(out)
        remainder = nxt
        quotient[step] = take
    return quotient, remainder


def truncated_array_multiplier(width: int, name: str = "tmul") -> Netlist:
    """Truncated ``width x width -> width`` array multiplier netlist.

    The fixed-width sibling of :func:`array_multiplier`, structured
    exactly like :class:`~repro.arch.multiplier.ArrayMultiplierUnit` so
    the two agree bit for bit (including under truncation).  Primary
    inputs ``a0..``, ``b0..`` and the constant ``zero``; outputs
    ``p0..p{width-1}``.
    """
    if width < 1:
        raise NetlistError(f"multiplier width must be >= 1, got {width}")
    nl = Netlist(name)
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    zero = nl.add_input("zero")

    def plain(position: Tuple[int, int], x: str, y: str, cin: str) -> Tuple[str, str]:
        row, col = position
        return _fa_cell(nl, f"fa{row}_{col}", x, y, cin)

    product = truncated_multiplier_rows(nl, "m", a, b, zero, plain)
    for j, net in enumerate(product):
        nl.add_gate(CellType.BUF, [net], f"p{j}", name=f"obuf{j}")
        nl.mark_output(f"p{j}")
    return nl


def restoring_divider(width: int, name: str = "rdiv") -> Netlist:
    """Unrolled restoring divider netlist, ``a / b`` with ``b != 0``.

    Primary inputs ``a0..``, ``b0..`` plus the constants ``zero`` and
    ``one``; outputs ``q0..q{width-1}`` then ``r0..r{width-1}``.
    Structured exactly like
    :class:`~repro.arch.divider.RestoringDividerUnit` for ``b != 0``;
    the functional unit raises on a zero divisor while the netlist
    yields don't-care values, so sweeps must mask those vectors out
    (see :func:`repro.gates.engine.exhaustive_field_mask`).
    """
    if width < 1:
        raise NetlistError(f"divider width must be >= 1, got {width}")
    nl = Netlist(name)
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    zero = nl.add_input("zero")
    one = nl.add_input("one")

    def plain(position: Tuple[int, int], x: str, y: str, cin: str) -> Tuple[str, str]:
        step, index = position
        return _fa_cell(nl, f"fa{step}_{index}", x, y, cin)

    quotient, remainder = restoring_divider_steps(nl, "d", a, b, zero, one, plain)
    for j, net in enumerate(quotient):
        nl.add_gate(CellType.BUF, [net], f"q{j}", name=f"obufq{j}")
        nl.mark_output(f"q{j}")
    for j, net in enumerate(remainder):
        nl.add_gate(CellType.BUF, [net], f"r{j}", name=f"obufr{j}")
        nl.mark_output(f"r{j}")
    return nl
