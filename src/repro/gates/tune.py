"""Shape-aware campaign autotuning: backend + chunk-geometry resolution.

Two services, both deterministic:

**Chunk resolution** (:func:`resolve_chunking`).  Every streaming
consumer of the fault matrix -- campaigns, coverage sweeps, fault
dictionaries, ATPG -- historically hard-coded its ``word_chunk`` /
``fault_chunk`` defaults.  They now share this single resolution rule:
an explicit keyword beats the ``REPRO_WORD_CHUNK`` /
``REPRO_FAULT_CHUNK`` environment variables, which beat the caller's
default, so tuned and manual paths cannot drift apart.

**Plan resolution** (:func:`resolve_plan`).  ``backend="auto"``
anywhere in the stack resolves here: a deterministic cost model over
the netlist *shape* -- net count, depth, fault-universe and
word-universe sizes, and the resulting per-chunk ``row_cells`` --
picks a concrete backend plus ``word_chunk`` / ``fault_chunk`` /
``matrix_budget`` / thread count.  The model prefers the widest
available tier whose overheads the workload amortises: ``cupy`` for
huge matrices when a GPU is present, ``threaded`` when the host has
cores to feed and the matrix is big enough to tile, the single-thread
``fused`` kernel otherwise.  Because every backend is bit-identical,
the plan only ever changes *speed*; the differential suite enforces
that.

An optional one-shot micro-probe (``calibrate=True``) replaces the
model's backend choice with a measured one: each candidate backend
times a small representative detect batch, and the winner is cached
per (netlist content hash, candidate set, host) -- in-process always,
and across processes in the JSON file named by ``REPRO_TUNE_CACHE``.

Every resolved plan (choice + reason) is appended to a bounded
in-process log (:func:`plan_log`), which the benchmark harness records
into the ``BENCH_*.json`` trajectories so a regression in the *choice
itself* is caught, not just a regression in kernel speed.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.gates.backends import (
    AUTO_BACKEND,
    OverridePlan,
    _REGISTRY,
    list_backends,
    resolve_backend_name,
)
from repro.gates.backends.threaded import resolve_threads
from repro.gates.compile import CompiledNetlist, compile_netlist
from repro.gates.netlist import Netlist
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics

#: Environment overrides of the streaming chunk geometry.
WORD_CHUNK_ENV = "REPRO_WORD_CHUNK"
FAULT_CHUNK_ENV = "REPRO_FAULT_CHUNK"

#: Path of the cross-process calibration cache (JSON); unset = in-process only.
TUNE_CACHE_ENV = "REPRO_TUNE_CACHE"

#: Force the cone-sparse execution tier on ("1") or off ("0") for every
#: campaign whose caller does not pass ``sparse=`` explicitly.
SPARSE_ENV = "REPRO_SPARSE"

#: Mean cone fraction (average share of all gates a single fault can
#: perturb) above which sparse schedules stop paying: the cones cover
#: nearly the whole netlist, so the restricted walk does the dense work
#: plus scheduling overhead.
SPARSE_DENSITY_MAX = 0.75

#: Below this many gates the dense fused walk is already trivial.
SPARSE_MIN_GATES = 4

#: Below this many 64-vector words the sparse tier's slab-escalation
#: early exit has no room to work in the word dimension, so its extra
#: kernel calls cost more than the skipped gates save.
SPARSE_MIN_WORDS = 512

#: The historical campaign defaults, now defined exactly once.
DEFAULT_WORD_CHUNK = 512
DEFAULT_FAULT_CHUNK = 64

#: Total (fault row x word) cells below which the threaded tier cannot
#: amortise its pool handoffs -- matches the threaded backend's own
#: sequential-fallback threshold times a few chunks.
THREADED_MIN_CELLS = 1 << 15

#: Total cells below which a GPU round-trip costs more than it saves.
CUPY_MIN_CELLS = 1 << 18

#: Probe geometry of the one-shot calibration micro-run.
_PROBE_WORDS = 32
_PROBE_FAULTS = 64
_PROBE_REPEATS = 2

#: Capacity of the in-process plan log.  Beyond this many resolved
#: plans the oldest entries fall off (counted by the
#: ``repro_plan_log_dropped_total`` metric, so the truncation is never
#: silent); the trace stream receives *every* plan regardless.
PLAN_LOG_MAX = 256

#: Bounded log of resolved plans, newest last (see :func:`plan_log`).
_PLAN_LOG: Deque["TuningPlan"] = deque(maxlen=PLAN_LOG_MAX)

#: (content hash, candidates, host) -> winning backend name.
_CALIBRATION_CACHE: Dict[str, str] = {}

#: Resolution memo: repeated identical resolutions (the per-call pattern
#: of ``backend="auto"`` in hot loops) must cost dict-lookup time, not a
#: model evaluation -- and must not flood the plan log.  Keyed on the
#: compiled object's identity (weakref-checked against id reuse), every
#: explicit argument and every environment knob the resolution reads.
_PLAN_MEMO: Dict[Tuple, Tuple[weakref.ref, "TuningPlan"]] = {}
_PLAN_MEMO_MAX = 256


def _env_knobs() -> Tuple:
    """The environment state a plan resolution depends on."""
    return (
        os.environ.get("REPRO_BACKEND"),
        os.environ.get(WORD_CHUNK_ENV),
        os.environ.get(FAULT_CHUNK_ENV),
        os.environ.get("REPRO_THREADS"),
        os.environ.get("REPRO_GATE_MATRIX_BUDGET"),
        os.environ.get(TUNE_CACHE_ENV),
        os.environ.get(SPARSE_ENV),
    )


def _env_bool(env: str) -> Optional[bool]:
    raw = os.environ.get(env)
    if raw is None or raw == "":
        return None
    low = raw.strip().lower()
    if low in ("1", "true", "on", "yes"):
        return True
    if low in ("0", "false", "off", "no"):
        return False
    raise SimulationError(f"{env}={raw!r} is not a boolean flag")


def _env_int(env: str) -> Optional[int]:
    raw = os.environ.get(env)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise SimulationError(f"{env}={raw!r} is not an integer") from None
    if value < 1:
        raise SimulationError(f"{env}={raw!r} must be a positive chunk size")
    return value


def resolve_chunking(
    word_chunk: Optional[int] = None,
    fault_chunk: Optional[int] = None,
    *,
    default_word_chunk: int = DEFAULT_WORD_CHUNK,
    default_fault_chunk: int = DEFAULT_FAULT_CHUNK,
) -> Tuple[int, int]:
    """The single chunk-geometry resolution rule of the whole stack.

    Per knob: explicit keyword > ``REPRO_WORD_CHUNK`` /
    ``REPRO_FAULT_CHUNK`` environment variable > the caller's default
    (campaigns pass 512/64, the coverage and dictionary builders
    256/64, exactly their historical constants).  Chunking never
    changes any result -- only memory traffic and overhead -- so the
    env overrides are safe global tuning levers.
    """
    if word_chunk is None:
        word_chunk = _env_int(WORD_CHUNK_ENV)
        if word_chunk is None:
            word_chunk = default_word_chunk
    if fault_chunk is None:
        fault_chunk = _env_int(FAULT_CHUNK_ENV)
        if fault_chunk is None:
            fault_chunk = default_fault_chunk
    return max(1, int(word_chunk)), max(1, int(fault_chunk))


@dataclass(frozen=True)
class NetlistShape:
    """The shape facts the cost model decides on."""

    n_nets: int
    n_gates: int
    n_inputs: int
    n_outputs: int
    depth: int
    n_faults: int  #: fault-universe rows (collapsed groups when known)
    n_words: int  #: word-universe length of the intended sweep
    row_cells: int  #: uint64 cells of one word column, n_nets * (fault_chunk + 1)

    @property
    def total_cells(self) -> int:
        """Fault-matrix cells of the whole campaign, the work measure."""
        return self.n_faults * self.n_words

    def to_dict(self) -> Dict[str, int]:
        return {
            "n_nets": self.n_nets,
            "n_gates": self.n_gates,
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "depth": self.depth,
            "n_faults": self.n_faults,
            "n_words": self.n_words,
            "row_cells": self.row_cells,
            "total_cells": self.total_cells,
        }


@dataclass(frozen=True)
class TuningPlan:
    """One resolved execution plan: the choice plus why it was made."""

    backend: str
    word_chunk: int
    fault_chunk: int
    matrix_budget: int
    threads: int
    source: str  #: "model" | "calibrated" | "explicit" | "sparse-*"
    reason: str
    shape: NetlistShape
    sparse: bool = False  #: cone-sparse execution tier on for this workload
    cone_density: Optional[float] = None  #: mean cone fraction the choice keyed on

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "word_chunk": self.word_chunk,
            "fault_chunk": self.fault_chunk,
            "matrix_budget": self.matrix_budget,
            "threads": self.threads,
            "source": self.source,
            "reason": self.reason,
            "shape": self.shape.to_dict(),
            "sparse": self.sparse,
            "cone_density": self.cone_density,
        }


def netlist_content_hash(compiled: CompiledNetlist) -> str:
    """Content hash over the compiled CSR arrays.

    Two structurally identical netlists hash equal regardless of object
    identity or name, which is what keys calibration results across
    processes and sessions.
    """
    digest = hashlib.sha1()
    for arr in (
        compiled.base_ops,
        compiled.inverts,
        compiled.operand_offsets,
        compiled.operands,
        compiled.gate_output_ids,
        compiled.input_ids,
        compiled.output_ids,
    ):
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


def _host_key() -> str:
    """Host identity of a calibration result (never the netlist's)."""
    return f"{platform.system()}-{platform.machine()}-cpu{os.cpu_count() or 1}"


def plan_log() -> Tuple[TuningPlan, ...]:
    """Resolved plans of this process, oldest first.

    The window is bounded at :data:`PLAN_LOG_MAX` entries: once full,
    each new plan silently evicts the oldest *from this log only* --
    the eviction is counted in the ``repro_plan_log_dropped_total``
    metric and every plan still reaches the trace stream as a
    ``tuning_plan`` event, so nothing is lost observably."""
    return tuple(_PLAN_LOG)


def last_plan() -> Optional[TuningPlan]:
    return _PLAN_LOG[-1] if _PLAN_LOG else None


def clear_plan_log() -> None:
    """Empty the plan log (and the resolution memo, so the next
    resolution of any shape is re-derived and re-logged)."""
    _PLAN_LOG.clear()
    _PLAN_MEMO.clear()


def clear_calibration_cache() -> None:
    """Drop the in-process calibration results (the file cache stays)."""
    _CALIBRATION_CACHE.clear()


# ----------------------------------------------------------------------
# The cost model
# ----------------------------------------------------------------------
def _model_backend(shape: NetlistShape) -> Tuple[str, int, str]:
    """(backend, threads, reason) from shape alone -- fully deterministic."""
    available = list_backends()
    threads = resolve_threads()
    cells = shape.total_cells
    if "cupy" in available and cells >= CUPY_MIN_CELLS:
        return (
            "cupy",
            threads,
            f"gpu tier: {cells} matrix cells >= {CUPY_MIN_CELLS} amortise "
            f"the device round-trip",
        )
    if "threaded" in available and threads > 1 and cells >= THREADED_MIN_CELLS:
        return (
            "threaded",
            threads,
            f"thread tier: {threads} threads, {cells} matrix cells >= "
            f"{THREADED_MIN_CELLS}",
        )
    if threads <= 1:
        reason = "single-thread fused: host has one usable core"
    elif cells < THREADED_MIN_CELLS:
        reason = (
            f"single-thread fused: {cells} matrix cells < "
            f"{THREADED_MIN_CELLS} would not amortise tiling"
        )
    else:
        reason = "single-thread fused: no parallel tier registered"
    return "fused", threads, reason


def _calibration_candidates(threads: int) -> Tuple[str, ...]:
    names: List[str] = ["fused"]
    available = list_backends()
    if "threaded" in available and threads > 1:
        names.append("threaded")
    if "cupy" in available:
        names.append("cupy")
    return tuple(names)


def _load_file_cache(path: str) -> Dict[str, str]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    return {str(k): str(v) for k, v in data.items()} if isinstance(data, dict) else {}


def _store_file_cache(path: str, entries: Dict[str, str]) -> None:
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(entries, fh, indent=0, sort_keys=True)
    except OSError:
        pass  # a read-only cache location degrades to in-process caching


def _probe_seconds(backend, words: np.ndarray, plan: OverridePlan, n_rows: int) -> float:
    best = float("inf")
    for _ in range(_PROBE_REPEATS):
        start = time.perf_counter()
        backend.run_detect(words, plan, n_rows)
        best = min(best, time.perf_counter() - start)
    return best


def _calibrate(compiled: CompiledNetlist, candidates: Tuple[str, ...]) -> str:
    """Measured backend choice, cached per (content, candidates, host)."""
    key = ":".join(
        (netlist_content_hash(compiled), ",".join(candidates), _host_key())
    )
    hit = _CALIBRATION_CACHE.get(key)
    if hit is not None:
        return hit
    cache_path = os.environ.get(TUNE_CACHE_ENV)
    file_entries: Dict[str, str] = {}
    if cache_path:
        file_entries = _load_file_cache(cache_path)
        hit = file_entries.get(key)
        if hit in candidates:
            _CALIBRATION_CACHE[key] = hit
            return hit
    from repro.gates.engine import exhaustive_word_range
    from repro.gates.faults import default_fault_universe

    n_inputs = compiled.n_inputs
    universe_words = max(1, (1 << min(n_inputs, 30)) >> 6)
    words = exhaustive_word_range(n_inputs, 0, min(universe_words, _PROBE_WORDS))
    faults = default_fault_universe(compiled.source)[:_PROBE_FAULTS]
    plan = OverridePlan(compiled, list(faults))
    timings = {}
    for name in candidates:
        backend = _REGISTRY[name](compiled)
        backend.run_detect(words, plan, plan.n_rows)  # warm caches / JIT
        timings[name] = _probe_seconds(backend, words, plan, plan.n_rows)
    winner = min(timings, key=timings.get)
    _CALIBRATION_CACHE[key] = winner
    if cache_path:
        file_entries[key] = winner
        _store_file_cache(cache_path, file_entries)
    return winner


# ----------------------------------------------------------------------
# The entry point
# ----------------------------------------------------------------------
def resolve_plan(
    netlist: Union[Netlist, CompiledNetlist],
    backend: Optional[str] = None,
    *,
    n_groups: Optional[int] = None,
    n_words: Optional[int] = None,
    word_chunk: Optional[int] = None,
    fault_chunk: Optional[int] = None,
    matrix_budget: Optional[int] = None,
    default_word_chunk: int = DEFAULT_WORD_CHUNK,
    default_fault_chunk: int = DEFAULT_FAULT_CHUNK,
    calibrate: bool = False,
) -> TuningPlan:
    """Resolve a concrete execution plan for one campaign-shaped workload.

    ``backend`` follows the standard precedence (keyword >
    ``REPRO_BACKEND`` env > registry default); a concrete name is
    passed through unchanged (``source="explicit"``), while ``"auto"``
    engages the cost model (``source="model"``) or, with
    ``calibrate=True``, the cached micro-probe
    (``source="calibrated"``).  ``n_groups`` / ``n_words`` override the
    shape estimates when the caller knows the real universe sizes;
    chunk and budget knobs resolve through :func:`resolve_chunking` and
    :func:`~repro.gates.engine.resolve_matrix_budget`, so an explicit
    keyword always wins.  The resolved plan is appended to
    :func:`plan_log`.
    """
    from repro.gates.engine import matrix_word_chunk, resolve_matrix_budget

    compiled = (
        netlist if isinstance(netlist, CompiledNetlist) else compile_netlist(netlist)
    )
    memo_key = (
        id(compiled), backend, n_groups, n_words, word_chunk, fault_chunk,
        matrix_budget, default_word_chunk, default_fault_chunk, calibrate,
        _env_knobs(),
    )
    hit = _PLAN_MEMO.get(memo_key)
    if hit is not None and hit[0]() is compiled:
        return hit[1]
    word_chunk, fault_chunk = resolve_chunking(
        word_chunk,
        fault_chunk,
        default_word_chunk=default_word_chunk,
        default_fault_chunk=default_fault_chunk,
    )
    if n_groups is not None:
        n_faults = int(n_groups)
    else:
        # Cheap structural estimate: one stem per net plus one branch
        # per fanout pin, two polarities each -- close enough for the
        # work-size thresholds without building the universe.
        n_faults = 2 * (compiled.n_nets + int(len(compiled.operands)))
    if n_words is None:
        n_words = max(1, (1 << min(compiled.n_inputs, 30)) >> 6)
    row_cells = compiled.n_nets * (fault_chunk + 1)
    shape = NetlistShape(
        n_nets=compiled.n_nets,
        n_gates=compiled.n_gates,
        n_inputs=compiled.n_inputs,
        n_outputs=len(compiled.output_ids),
        depth=compiled.depth,
        n_faults=n_faults,
        n_words=int(n_words),
        row_cells=row_cells,
    )
    resolved = resolve_backend_name(backend, allow_auto=True)
    threads = resolve_threads()
    if resolved != AUTO_BACKEND:
        source = "explicit"
        chosen = resolved
        reason = f"explicit selection {resolved!r}"
    elif calibrate:
        source = "calibrated"
        candidates = _calibration_candidates(threads)
        chosen = _calibrate(compiled, candidates)
        reason = f"micro-probe winner among {list(candidates)}"
    else:
        source = "model"
        chosen, threads, reason = _model_backend(shape)
    budget = resolve_matrix_budget(row_cells, matrix_budget)
    plan = TuningPlan(
        backend=chosen,
        word_chunk=matrix_word_chunk(row_cells, word_chunk, budget),
        fault_chunk=fault_chunk,
        matrix_budget=budget,
        threads=threads,
        source=source,
        reason=reason,
        shape=shape,
    )
    if len(_PLAN_LOG) == PLAN_LOG_MAX:
        obs_metrics.inc("repro_plan_log_dropped_total")
    _PLAN_LOG.append(plan)
    obs_events.emit(
        obs_events.TUNING_PLAN,
        backend=chosen,
        source=source,
        reason=reason,
        word_chunk=plan.word_chunk,
        fault_chunk=plan.fault_chunk,
        threads=threads,
        n_faults=shape.n_faults,
        n_words=shape.n_words,
    )
    try:
        ref = weakref.ref(
            compiled, lambda _r, _k=memo_key: _PLAN_MEMO.pop(_k, None)
        )
    except TypeError:  # pragma: no cover - non-weakrefable compiled form
        ref = lambda: compiled
    _PLAN_MEMO[memo_key] = (ref, plan)
    while len(_PLAN_MEMO) > _PLAN_MEMO_MAX:
        del _PLAN_MEMO[next(iter(_PLAN_MEMO))]
    return plan


# ----------------------------------------------------------------------
# The sparse/dense decision
# ----------------------------------------------------------------------
_SPARSE_MEMO: Dict[Tuple, Tuple[weakref.ref, TuningPlan]] = {}


def backend_supports_sparse(name: str) -> bool:
    """Whether backend ``name`` restricts work under a sparse schedule."""
    factory = _REGISTRY.get(name)
    return bool(getattr(factory, "supports_sparse", False))


def resolve_sparse(
    netlist: Union[Netlist, CompiledNetlist],
    backend: Optional[str] = None,
    *,
    sparse: Optional[bool] = None,
    n_groups: Optional[int] = None,
    n_words: Optional[int] = None,
    word_chunk: Optional[int] = None,
    fault_chunk: Optional[int] = None,
) -> TuningPlan:
    """Decide sparse vs dense execution for one campaign workload.

    Precedence: the explicit ``sparse=`` keyword, then the
    ``REPRO_SPARSE`` environment variable, then the cone-density
    heuristic -- sparse when the backend has sparse kernels and the
    netlist's mean cone fraction (:func:`repro.analysis.cones.
    analyze_gate_cones`) is at most :data:`SPARSE_DENSITY_MAX`.  The
    decision is returned as a :class:`TuningPlan` with ``sparse`` /
    ``cone_density`` set, logged to :func:`plan_log` and emitted as a
    ``tuning_plan`` event, so benchmark trajectories record the choice.

    Sparse execution is bit-identical to dense on every backend (the
    base kernel falls back to the dense path), so forcing it on via
    the environment is always safe -- only speed changes.
    """
    from repro.gates.engine import matrix_word_chunk, resolve_matrix_budget

    compiled = (
        netlist if isinstance(netlist, CompiledNetlist) else compile_netlist(netlist)
    )
    memo_key = (
        "sparse", id(compiled), backend, sparse, n_groups, n_words,
        word_chunk, fault_chunk, _env_knobs(),
    )
    hit = _SPARSE_MEMO.get(memo_key)
    if hit is not None and hit[0]() is compiled:
        return hit[1]
    word_chunk, fault_chunk = resolve_chunking(word_chunk, fault_chunk)
    backend_name = resolve_backend_name(backend)
    supports = backend_supports_sparse(backend_name)

    density: Optional[float] = None
    if compiled.n_gates:
        from repro.analysis.cones import analyze_gate_cones

        density = analyze_gate_cones(compiled.source).mean_cone_fraction
    if n_words is None:
        n_words = max(1, (1 << min(compiled.n_inputs, 30)) >> 6)
    env_flag = _env_bool(SPARSE_ENV)
    if sparse is not None:
        enabled = bool(sparse)
        source = "sparse-explicit"
        reason = f"explicit sparse={enabled}"
    elif env_flag is not None:
        enabled = env_flag
        source = "sparse-env"
        reason = f"{SPARSE_ENV} forces {'sparse' if enabled else 'dense'}"
    else:
        source = "sparse-model"
        if not supports:
            enabled = False
            reason = f"dense: backend {backend_name!r} has no sparse kernels"
        elif compiled.n_gates < SPARSE_MIN_GATES:
            enabled = False
            reason = (
                f"dense: {compiled.n_gates} gates < {SPARSE_MIN_GATES}, "
                f"nothing to skip"
            )
        elif n_words < SPARSE_MIN_WORDS:
            # The slab-escalation early exit needs a vector space that
            # spans many words; below this the per-call overhead of the
            # extra kernel invocations outweighs the skipped gates.
            enabled = False
            reason = (
                f"dense: {int(n_words)} words < {SPARSE_MIN_WORDS}, vector "
                f"space too small for slab early exit"
            )
        elif density is not None and density <= SPARSE_DENSITY_MAX:
            enabled = True
            reason = (
                f"sparse: mean cone fraction {density:.3f} <= "
                f"{SPARSE_DENSITY_MAX} leaves most gates skippable"
            )
        else:
            enabled = False
            reason = (
                f"dense: mean cone fraction {density:.3f} > "
                f"{SPARSE_DENSITY_MAX}, cones cover the netlist"
            )

    if n_groups is not None:
        n_faults = int(n_groups)
    else:
        n_faults = 2 * (compiled.n_nets + int(len(compiled.operands)))
    row_cells = compiled.n_nets * (fault_chunk + 1)
    shape = NetlistShape(
        n_nets=compiled.n_nets,
        n_gates=compiled.n_gates,
        n_inputs=compiled.n_inputs,
        n_outputs=len(compiled.output_ids),
        depth=compiled.depth,
        n_faults=n_faults,
        n_words=int(n_words),
        row_cells=row_cells,
    )
    budget = resolve_matrix_budget(row_cells, None)
    plan = TuningPlan(
        backend=backend_name,
        word_chunk=matrix_word_chunk(row_cells, word_chunk, budget),
        fault_chunk=fault_chunk,
        matrix_budget=budget,
        threads=resolve_threads(),
        source=source,
        reason=reason,
        shape=shape,
        sparse=enabled,
        cone_density=density,
    )
    if len(_PLAN_LOG) == PLAN_LOG_MAX:
        obs_metrics.inc("repro_plan_log_dropped_total")
    _PLAN_LOG.append(plan)
    obs_events.emit(
        obs_events.TUNING_PLAN,
        backend=backend_name,
        source=source,
        reason=reason,
        sparse=enabled,
        cone_density=density,
        n_faults=shape.n_faults,
        n_words=shape.n_words,
    )
    try:
        ref = weakref.ref(
            compiled, lambda _r, _k=memo_key: _SPARSE_MEMO.pop(_k, None)
        )
    except TypeError:  # pragma: no cover - non-weakrefable compiled form
        ref = lambda: compiled
    _SPARSE_MEMO[memo_key] = (ref, plan)
    while len(_SPARSE_MEMO) > _PLAN_MEMO_MAX:
        del _SPARSE_MEMO[next(iter(_SPARSE_MEMO))]
    return plan


__all__ = [
    "AUTO_BACKEND",
    "WORD_CHUNK_ENV",
    "FAULT_CHUNK_ENV",
    "TUNE_CACHE_ENV",
    "SPARSE_ENV",
    "SPARSE_DENSITY_MAX",
    "SPARSE_MIN_GATES",
    "SPARSE_MIN_WORDS",
    "backend_supports_sparse",
    "resolve_sparse",
    "DEFAULT_WORD_CHUNK",
    "DEFAULT_FAULT_CHUNK",
    "NetlistShape",
    "PLAN_LOG_MAX",
    "TuningPlan",
    "resolve_chunking",
    "resolve_plan",
    "netlist_content_hash",
    "plan_log",
    "last_plan",
    "clear_plan_log",
    "clear_calibration_cache",
]
