"""Logic simulation of gate-level netlists, with fault injection.

Two entry points:

* :func:`simulate` -- scalar simulation of a single input assignment;
* :func:`simulate_vector` -- vectorised simulation of many assignments at
  once (NumPy arrays of 0/1 per primary input).

Both accept an optional :class:`~repro.gates.faults.StuckAtFault`.  A stem
fault overrides the net value seen by *all* readers (and by primary
outputs); a branch fault overrides the value seen by one specific gate
input pin only.

:class:`NetlistSimulator` is a thin adapter over the compiled
bit-parallel engine: the netlist is lowered once
(:mod:`repro.gates.compile`), vectors are packed 64 per ``uint64`` word
and evaluated word-wide (:mod:`repro.gates.engine`), and results are
unpacked back to the historical uint8 dict interface.  The original
dict-keyed interpreter survives as :class:`ReferenceSimulator`; it is
the differential-testing oracle for the engine and the baseline of
``benchmarks/bench_engine.py``.

One-shot :func:`simulate` / :func:`simulate_vector` calls reuse a cached
:class:`NetlistSimulator` per netlist (invalidated via
:attr:`~repro.gates.netlist.Netlist.version`), so repeated one-shot
calls no longer re-validate and re-sort the netlist every time.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import SimulationError
from repro.gates.cells import cell_function
from repro.gates.compile import compile_netlist
from repro.gates.engine import BitParallelEngine, engine_for, unpack_bits
from repro.gates.faults import StuckAtFault
from repro.gates.memo import identity_memo, netlist_fingerprint
from repro.gates.netlist import Gate, Netlist

Value = Union[int, np.ndarray]


def _as_bit_array(name: str, value: Value) -> np.ndarray:
    arr = np.asarray(value, dtype=np.uint8)
    if arr.ndim > 1:
        raise SimulationError(f"input {name!r} must be scalar or 1-d, got shape {arr.shape}")
    bad = arr > 1
    if np.any(bad):
        raise SimulationError(f"input {name!r} contains non-binary values")
    return arr


class NetlistSimulator:
    """Reusable simulator bound to one netlist (compiled, bit-parallel).

    ``backend`` selects the execution backend by registry name
    (keyword > ``REPRO_BACKEND`` env > default); results are
    bit-identical across backends.
    """

    def __init__(self, netlist: Netlist, backend: Optional[str] = None) -> None:
        netlist.validate()
        self.netlist = netlist
        self._compiled = compile_netlist(netlist)
        self._engine = engine_for(netlist, backend)

    @property
    def engine(self) -> BitParallelEngine:
        """The underlying bit-parallel engine (for batched campaigns)."""
        return self._engine

    # ------------------------------------------------------------------
    def _unpack(
        self, words: np.ndarray, n_vectors: int, scalar: bool
    ) -> np.ndarray:
        bits = unpack_bits(words, n_vectors)
        return bits.reshape(()) if scalar else bits

    def run(
        self,
        inputs: Mapping[str, Value],
        fault: Optional[StuckAtFault] = None,
    ) -> Dict[str, np.ndarray]:
        """Simulate and return the value of every net.

        ``inputs`` maps each primary input name to 0/1 (scalar) or a 1-d
        array of 0/1 values; all arrays must share one length.  Scalar
        inputs yield 0-d arrays, matching the historical interface.
        """
        packed, scalar = self._engine.pack_inputs(inputs)
        words = self._engine.run_words(packed, fault)
        return {
            net: self._unpack(words[nid], packed.n_vectors, scalar)
            for net, nid in self._compiled.net_ids.items()
        }

    def outputs(
        self,
        inputs: Mapping[str, Value],
        fault: Optional[StuckAtFault] = None,
    ) -> Dict[str, np.ndarray]:
        """Simulate and return only the primary output values."""
        packed, scalar = self._engine.pack_inputs(inputs)
        words = self._engine.run_words(packed, fault)
        return {
            net: self._unpack(
                words[self._compiled.net_id(net)], packed.n_vectors, scalar
            )
            for net in self.netlist.primary_outputs
        }

    # ------------------------------------------------------------------
    def truth_table(self, fault: Optional[StuckAtFault] = None) -> np.ndarray:
        """Exhaustive truth table of the primary outputs.

        Returns an array of shape ``(2**n_inputs, n_outputs)`` where input
        combination ``i`` assigns bit ``k`` of ``i`` to the ``k``-th
        primary input (input order as declared).
        """
        n = len(self.netlist.primary_inputs)
        if n > 20:
            raise SimulationError(f"truth table of {n} inputs is too large")
        packed = self._engine.exhaustive()
        words = self._engine.run_words(packed, fault)
        out_ids = [self._compiled.net_id(net) for net in self.netlist.primary_outputs]
        bits = unpack_bits(words[out_ids], packed.n_vectors)  # (n_out, V)
        return bits.T.astype(np.uint8)

    def behavior_signature(self, fault: Optional[StuckAtFault] = None) -> bytes:
        """Opaque signature of the (possibly faulty) exhaustive behaviour."""
        return self.truth_table(fault).tobytes()


class ReferenceSimulator:
    """The original dict-keyed interpreter, kept as a semantic oracle.

    Same interface and fault semantics as :class:`NetlistSimulator`, but
    every call re-walks the gate list net-name by net-name.  Slow by
    design -- equivalence property tests and the engine benchmark use it
    as the trusted baseline.
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self._ordered: Sequence[Gate] = netlist.topological_gates()

    # ------------------------------------------------------------------
    def run(
        self,
        inputs: Mapping[str, Value],
        fault: Optional[StuckAtFault] = None,
    ) -> Dict[str, np.ndarray]:
        """Simulate and return the value of every net."""
        values: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for name in self.netlist.primary_inputs:
            if name not in inputs:
                raise SimulationError(f"missing assignment for primary input {name!r}")
            arr = _as_bit_array(name, inputs[name])
            if arr.ndim == 1:
                if length is None:
                    length = arr.shape[0]
                elif arr.shape[0] != length:
                    raise SimulationError(
                        f"input {name!r} length {arr.shape[0]} != {length}"
                    )
            values[name] = arr

        stem_net: Optional[str] = None
        branch_key = None
        stuck_value = 0
        if fault is not None:
            stuck_value = fault.value
            if fault.site.is_stem:
                stem_net = fault.site.net
            else:
                gate_name, pin = fault.site.branch
                branch_key = (gate_name, pin)

        def stuck(arr: np.ndarray) -> np.ndarray:
            return np.full_like(arr, stuck_value)

        if stem_net is not None and stem_net in values:
            values[stem_net] = stuck(values[stem_net])

        for gate in self._ordered:
            pins = []
            for pin_index, net in enumerate(gate.inputs):
                pin_value = values[net]
                if branch_key == (gate.name, pin_index):
                    pin_value = stuck(pin_value)
                pins.append(pin_value)
            out = cell_function(gate.cell_type)(pins)
            if stem_net == gate.output:
                out = stuck(np.asarray(out, dtype=np.uint8))
            values[gate.output] = np.asarray(out, dtype=np.uint8)
        return values

    def outputs(
        self,
        inputs: Mapping[str, Value],
        fault: Optional[StuckAtFault] = None,
    ) -> Dict[str, np.ndarray]:
        """Simulate and return only the primary output values."""
        values = self.run(inputs, fault)
        return {net: values[net] for net in self.netlist.primary_outputs}

    # ------------------------------------------------------------------
    def truth_table(self, fault: Optional[StuckAtFault] = None) -> np.ndarray:
        """Exhaustive truth table of the primary outputs."""
        n = len(self.netlist.primary_inputs)
        if n > 20:
            raise SimulationError(f"truth table of {n} inputs is too large")
        combos = np.arange(2**n, dtype=np.uint32)
        assignment = {
            name: ((combos >> k) & 1).astype(np.uint8)
            for k, name in enumerate(self.netlist.primary_inputs)
        }
        outs = self.outputs(assignment, fault)
        return np.stack(
            [outs[net] for net in self.netlist.primary_outputs], axis=1
        ).astype(np.uint8)

    def behavior_signature(self, fault: Optional[StuckAtFault] = None) -> bytes:
        """Opaque signature of the (possibly faulty) exhaustive behaviour."""
        return self.truth_table(fault).tobytes()


# ----------------------------------------------------------------------
# One-shot helpers with a per-netlist simulator cache
# ----------------------------------------------------------------------
@identity_memo(netlist_fingerprint)
def get_simulator(netlist: Netlist) -> NetlistSimulator:
    """Cached :class:`NetlistSimulator` for ``netlist``.

    Keyed on object identity and :attr:`Netlist.version`, so one-shot
    :func:`simulate` calls stop re-validating and re-sorting the same
    netlist while structural mutations still force a rebuild.
    """
    return NetlistSimulator(netlist)


def simulate(
    netlist: Netlist,
    inputs: Mapping[str, int],
    fault: Optional[StuckAtFault] = None,
) -> Dict[str, int]:
    """One-shot scalar simulation; returns primary output values as ints."""
    sim = get_simulator(netlist)
    outs = sim.outputs(inputs, fault)
    return {net: int(np.asarray(value).reshape(()).item()) for net, value in outs.items()}


def simulate_vector(
    netlist: Netlist,
    inputs: Mapping[str, np.ndarray],
    fault: Optional[StuckAtFault] = None,
) -> Dict[str, np.ndarray]:
    """One-shot vectorised simulation of many assignments."""
    return get_simulator(netlist).outputs(inputs, fault)
