"""Lowering of :class:`~repro.gates.netlist.Netlist` to flat arrays.

The dict-keyed :class:`Netlist` graph is convenient to build and query
but expensive to walk repeatedly: every simulation resolves net names
through hash lookups and re-derives structure.  A
:class:`CompiledNetlist` lowers the graph once into the dense form the
bit-parallel engine (:mod:`repro.gates.engine`) consumes:

* every net gets a small integer id (primary inputs first, then gate
  outputs in topological order), so simulation state is one NumPy array
  indexed by net id instead of a dict;
* gates are flattened into per-gate opcode / base-op / invert arrays in
  topological order, with operand net ids packed into a CSR-style
  ``(operand_offsets, operands)`` pair (gate ``g`` reads
  ``operands[operand_offsets[g]:operand_offsets[g+1]]``);
* the fanout relation is the transposed CSR ``(fanout_offsets,
  fanout_gates, fanout_pins)``: the pins reading net ``n`` are rows
  ``fanout_offsets[n]:fanout_offsets[n+1]``;
* the topological order itself is computed once and cached with the
  compiled object, along with the *levelization* (``gate_levels`` /
  ``net_levels``): gates grouped by longest distance from the primary
  inputs, which is what lets the ``fused`` execution backend
  (:mod:`repro.gates.backends.fused`) replace the per-gate dispatch
  loop with batched per-level NumPy calls.

Compilation results are memoised per source netlist and invalidated via
:attr:`Netlist.version`, so hot paths that repeatedly wrap the same
netlist (``simulate()``, the faulty cell-library builder, fault
campaigns) pay the lowering cost once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.errors import NetlistError
from repro.gates.cells import CellType
from repro.gates.memo import identity_memo, netlist_fingerprint
from repro.gates.netlist import Gate, Netlist

# Opcode table.  ``base`` selects the word-wide reduction; ``invert``
# complements the reduced word (NAND/NOR/XNOR/NOT).
OP_AND = 0
OP_OR = 1
OP_XOR = 2
OP_COPY = 3

_LOWERING: Dict[CellType, Tuple[int, bool]] = {
    CellType.AND: (OP_AND, False),
    CellType.NAND: (OP_AND, True),
    CellType.OR: (OP_OR, False),
    CellType.NOR: (OP_OR, True),
    CellType.XOR: (OP_XOR, False),
    CellType.XNOR: (OP_XOR, True),
    CellType.BUF: (OP_COPY, False),
    CellType.NOT: (OP_COPY, True),
}


@dataclass(frozen=True)
class CompiledNetlist:
    """Dense, index-based lowering of one :class:`Netlist`.

    All gate-indexed arrays are in topological order; ``gate_names[g]``
    recovers the source gate instance name of compiled gate ``g``.
    """

    name: str
    source: Netlist
    net_ids: Mapping[str, int]
    net_names: Tuple[str, ...]
    input_ids: np.ndarray  # (n_inputs,) int32, order = declared PI order
    output_ids: np.ndarray  # (n_outputs,) int32, order = declared PO order
    base_ops: np.ndarray  # (n_gates,) uint8, OP_AND/OP_OR/OP_XOR/OP_COPY
    inverts: np.ndarray  # (n_gates,) bool
    operand_offsets: np.ndarray  # (n_gates + 1,) int32, CSR offsets
    operands: np.ndarray  # flat operand net ids, int32
    gate_output_ids: np.ndarray  # (n_gates,) int32
    gate_names: Tuple[str, ...]
    pin_ids: Mapping[Tuple[str, int], Tuple[int, int]]
    fanout_offsets: np.ndarray  # (n_nets + 1,) int32
    fanout_gates: np.ndarray  # compiled gate index per reader pin
    fanout_pins: np.ndarray  # pin index per reader pin
    gate_levels: np.ndarray  # (n_gates,) int32, 1 + max operand level
    net_levels: np.ndarray  # (n_nets,) int32, 0 for primary inputs

    @property
    def n_nets(self) -> int:
        return len(self.net_names)

    @property
    def n_gates(self) -> int:
        return len(self.gate_names)

    @property
    def n_inputs(self) -> int:
        return len(self.input_ids)

    @property
    def n_outputs(self) -> int:
        return len(self.output_ids)

    @property
    def depth(self) -> int:
        """Deepest gate level (0 for a gate-free netlist)."""
        return int(self.gate_levels.max()) if len(self.gate_levels) else 0

    def net_id(self, net: str) -> int:
        """Resolve a net name to its compiled id."""
        try:
            return self.net_ids[net]
        except KeyError:
            raise NetlistError(f"unknown net {net!r} in netlist {self.name!r}") from None

    def pin_id(self, gate_name: str, pin: int) -> Tuple[int, int]:
        """Resolve (gate instance name, pin index) to (compiled gate, pin)."""
        try:
            return self.pin_ids[(gate_name, pin)]
        except KeyError:
            raise NetlistError(
                f"unknown gate pin {gate_name!r}.pin{pin} in netlist {self.name!r}"
            ) from None

    def fanout_of(self, net: str) -> List[Tuple[int, int]]:
        """Reader (compiled gate index, pin) pairs of ``net`` via the CSR."""
        nid = self.net_id(net)
        lo, hi = int(self.fanout_offsets[nid]), int(self.fanout_offsets[nid + 1])
        return [
            (int(self.fanout_gates[k]), int(self.fanout_pins[k])) for k in range(lo, hi)
        ]


def _lower(netlist: Netlist, ordered: List[Gate]) -> CompiledNetlist:
    net_ids: Dict[str, int] = {}
    net_names: List[str] = []

    def intern(net: str) -> int:
        nid = net_ids.get(net)
        if nid is None:
            nid = len(net_names)
            net_ids[net] = nid
            net_names.append(net)
        return nid

    input_ids = np.array(
        [intern(net) for net in netlist.primary_inputs], dtype=np.int32
    )
    base_ops = np.empty(len(ordered), dtype=np.uint8)
    inverts = np.empty(len(ordered), dtype=bool)
    operand_offsets = np.zeros(len(ordered) + 1, dtype=np.int32)
    flat_operands: List[int] = []
    gate_output_ids = np.empty(len(ordered), dtype=np.int32)
    gate_names: List[str] = []
    pin_ids: Dict[Tuple[str, int], Tuple[int, int]] = {}

    for g, gate in enumerate(ordered):
        try:
            base, invert = _LOWERING[gate.cell_type]
        except KeyError:
            raise NetlistError(
                f"cell type {gate.cell_type!r} has no compiled lowering"
            ) from None
        base_ops[g] = base
        inverts[g] = invert
        for pin, net in enumerate(gate.inputs):
            flat_operands.append(intern(net))
            pin_ids[(gate.name, pin)] = (g, pin)
        operand_offsets[g + 1] = len(flat_operands)
        gate_output_ids[g] = intern(gate.output)
        gate_names.append(gate.name)

    for net in netlist.primary_outputs:
        intern(net)
    output_ids = np.array(
        [net_ids[net] for net in netlist.primary_outputs], dtype=np.int32
    )

    operands = np.array(flat_operands, dtype=np.int32)
    n_nets = len(net_names)

    # Levelization: longest distance from the primary inputs.  Inputs
    # (and any net first seen as a gate operand) sit at level 0; a gate
    # is one past its deepest operand.  Topological order makes the
    # single forward pass exact.
    net_levels = np.zeros(n_nets, dtype=np.int32)
    gate_levels = np.empty(len(ordered), dtype=np.int32)
    for g in range(len(ordered)):
        lo, hi = operand_offsets[g], operand_offsets[g + 1]
        level = 0
        for k in range(lo, hi):
            opl = net_levels[flat_operands[k]]
            if opl > level:
                level = opl
        gate_levels[g] = level + 1
        net_levels[gate_output_ids[g]] = level + 1

    # Transposed CSR: readers of each net, ordered by compiled gate/pin.
    counts = np.zeros(n_nets + 1, dtype=np.int32)
    for nid in flat_operands:
        counts[nid + 1] += 1
    fanout_offsets = np.cumsum(counts, dtype=np.int32)
    fanout_gates = np.empty(len(flat_operands), dtype=np.int32)
    fanout_pins = np.empty(len(flat_operands), dtype=np.int32)
    cursor = fanout_offsets[:-1].copy()
    for g in range(len(ordered)):
        for pin, k in enumerate(range(operand_offsets[g], operand_offsets[g + 1])):
            nid = flat_operands[k]
            slot = cursor[nid]
            fanout_gates[slot] = g
            fanout_pins[slot] = pin
            cursor[nid] += 1

    return CompiledNetlist(
        name=netlist.name,
        source=netlist,
        net_ids=net_ids,
        net_names=tuple(net_names),
        input_ids=input_ids,
        output_ids=output_ids,
        base_ops=base_ops,
        inverts=inverts,
        operand_offsets=operand_offsets,
        operands=operands,
        gate_output_ids=gate_output_ids,
        gate_names=tuple(gate_names),
        pin_ids=pin_ids,
        fanout_offsets=fanout_offsets,
        fanout_gates=fanout_gates,
        fanout_pins=fanout_pins,
        gate_levels=gate_levels,
        net_levels=net_levels,
    )


@identity_memo(netlist_fingerprint)
def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Lower ``netlist`` to a :class:`CompiledNetlist`, memoised.

    The cache is keyed on object identity plus :attr:`Netlist.version`,
    so mutating the netlist (``add_gate``...) transparently recompiles
    on next use while repeated wrapping of an unchanged netlist is free.
    The netlist is validated on every cache miss.
    """
    netlist.validate()
    return _lower(netlist, netlist.topological_gates())
