"""The per-gate NumPy ufunc loop -- the reference execution backend.

This is the original :class:`~repro.gates.engine.BitParallelEngine`
hot path moved verbatim: one resolved dispatch tuple per gate, one
word-wide ufunc call per gate, fresh result matrices every call.  It
is the semantic baseline the faster backends are differentially tested
against, and the denominator of the backend-speedup gate in
``benchmarks/bench_engine.py``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.gates.backends.base import Backend, GateOp, gate_program
from repro.gates.backends.plan import OverridePlan
from repro.gates.compile import CompiledNetlist


class PythonLoopBackend(Backend):
    """Per-gate ufunc dispatch over the compiled gate program."""

    name = "python_loop"

    def __init__(self, compiled: CompiledNetlist) -> None:
        super().__init__(compiled)
        self._program: List[GateOp] = gate_program(compiled)

    def run_words(self, words: np.ndarray) -> np.ndarray:
        vals = np.empty((self.compiled.n_nets, words.shape[1]), dtype=np.uint64)
        for k, nid in enumerate(self._input_ids):
            vals[nid] = words[k]
        for ufunc, invert, operand_ids, out_id in self._program:
            out = vals[out_id]
            if ufunc is None:  # BUF / NOT
                if invert:
                    np.invert(vals[operand_ids[0]], out=out)
                else:
                    np.copyto(out, vals[operand_ids[0]])
            else:
                ufunc(vals[operand_ids[0]], vals[operand_ids[1]], out=out)
                for nid in operand_ids[2:]:
                    ufunc(out, vals[nid], out=out)
                if invert:
                    np.invert(out, out=out)
        return vals

    def run_matrix(
        self, words: np.ndarray, plan: OverridePlan, n_rows: int
    ) -> np.ndarray:
        """Fault-major evaluation, all rows advancing together.

        Each gate costs one word-wide NumPy op over the whole fault
        batch instead of ``n_rows`` interpreter walks.
        """
        c = self.compiled
        n_words = words.shape[1]
        stems = plan.stem
        branches = plan.branch_by_gate
        apply = plan.apply
        vals = np.empty((c.n_nets, n_rows, n_words), dtype=np.uint64)
        for k, nid in enumerate(self._input_ids):
            vals[nid] = words[k]  # broadcast (n_words,) -> (n_rows, n_words)
            entry = stems.get(nid)
            if entry is not None:
                apply(entry, vals[nid])
        for g, (ufunc, invert, operand_ids, out_id) in enumerate(self._program):
            gate_branches = branches.get(g)
            if gate_branches is None:
                pins = [vals[nid] for nid in operand_ids]
            else:
                # Copy only the pins a branch fault actually overrides;
                # untouched pins stay zero-copy views of their nets.
                pins = []
                for pin, nid in enumerate(operand_ids):
                    entry = gate_branches.get(pin)
                    if entry is None:
                        pins.append(vals[nid])
                    else:
                        faulted = vals[nid].copy()
                        apply(entry, faulted)
                        pins.append(faulted)
            out = vals[out_id]
            if ufunc is None:  # BUF / NOT
                if invert:
                    np.invert(pins[0], out=out)
                else:
                    np.copyto(out, pins[0])
            else:
                ufunc(pins[0], pins[1], out=out)
                for pv in pins[2:]:
                    ufunc(out, pv, out=out)
                if invert:
                    np.invert(out, out=out)
            entry = stems.get(out_id)
            if entry is not None:
                apply(entry, out)
        return vals
