"""Thread-parallel execution backend.

The fault-major matrix is an embarrassingly-parallel rectangle: cell
``(row, word)`` of every kernel result depends only on its own fault
group and its own 64-vector word column.  NumPy's bitwise ufuncs
release the GIL while they run, so the rectangle tiles across a plain
:class:`~concurrent.futures.ThreadPoolExecutor` without any process
forking or array pickling -- each tile is evaluated by a private
:class:`~repro.gates.backends.fused.FusedBackend` (workspaces are not
thread-safe, so one inner backend per worker slot) and written into a
disjoint region of the shared result array.

Tiling prefers the word axis (uniform per-word cost; the campaign's
streaming chunks keep it long); when fault rows outnumber words the
grid also splits rows, slicing the :class:`OverridePlan` per tile
(:func:`slice_plan`).  Either way every cell is computed by exactly the
same fused kernel as the single-threaded backend, so results are
bit-identical for *any* thread count -- the invariance
``tests/test_tune.py`` pins down.

Thread count resolves ``threads=`` keyword > ``REPRO_THREADS`` env >
``os.cpu_count()``; on a single-core host the backend degrades to the
plain fused path (no pool is ever created), so ``threaded`` is always
safe to register.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.gates.backends.base import Backend
from repro.gates.backends.fused import FusedBackend
from repro.gates.backends.plan import OverridePlan
from repro.gates.compile import CompiledNetlist

#: Environment override of the worker-thread count.
THREADS_ENV = "REPRO_THREADS"

#: Tiles below this many (row x word) cells are not worth dispatching
#: to the pool: the fused kernel finishes faster than a pool handoff.
PARALLEL_MIN_CELLS = 1 << 13

#: Upper bound on auto-resolved threads (mirrors the process-sharding
#: cap; explicit ``threads=`` / ``REPRO_THREADS`` may exceed it).
MAX_AUTO_THREADS = 8


def resolve_threads(threads: Optional[int] = None) -> int:
    """Worker-thread count: keyword > ``REPRO_THREADS`` env > cpu count."""
    if threads is not None:
        return max(1, int(threads))
    env = os.environ.get(THREADS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise SimulationError(
                f"{THREADS_ENV}={env!r} is not a thread count"
            ) from None
    return max(1, min(os.cpu_count() or 1, MAX_AUTO_THREADS))


def _bounds(n_items: int, n_parts: int) -> List[Tuple[int, int]]:
    """Contiguous balanced ``[lo, hi)`` ranges (sizes differ by <= 1)."""
    n_parts = max(1, min(n_parts, n_items)) if n_items else 1
    base, extra = divmod(n_items, n_parts)
    out: List[Tuple[int, int]] = []
    lo = 0
    for part in range(n_parts):
        hi = lo + base + (1 if part < extra else 0)
        if hi > lo:
            out.append((lo, hi))
        lo = hi
    return out


def slice_plan(plan: OverridePlan, lo: int, hi: int) -> OverridePlan:
    """Sub-plan covering override rows ``[lo, hi)``, row indices rebased.

    Rows at or beyond ``plan.n_rows`` carry no overrides (ride-along
    golden rows), so the slice only filters and rebases the entries
    that exist; the result drives a tile evaluation whose rows
    concatenate back bit-identically.
    """
    sub = OverridePlan.__new__(OverridePlan)
    sub.n_rows = max(0, min(hi, plan.n_rows) - lo)
    sub.row_levels = plan.row_levels[lo : max(lo, min(hi, plan.n_rows))]

    def cut(entry):
        rows, consts = entry
        keep = [i for i, r in enumerate(rows) if lo <= r < hi]
        if not keep:
            return None
        return ([rows[i] - lo for i in keep], consts[keep])

    sub.stem = {}
    for nid, entry in plan.stem.items():
        part = cut(entry)
        if part is not None:
            sub.stem[nid] = part
    sub.branch_by_gate = {}
    for gate, pins in plan.branch_by_gate.items():
        cut_pins = {}
        for pin, entry in pins.items():
            part = cut(entry)
            if part is not None:
                cut_pins[pin] = part
        if cut_pins:
            sub.branch_by_gate[gate] = cut_pins
    return sub


class ThreadedBackend(Backend):
    """Fused kernels tiled over a (fault-row x word-range) thread grid."""

    name = "threaded"
    supports_sparse = True

    def __init__(
        self, compiled: CompiledNetlist, threads: Optional[int] = None
    ) -> None:
        super().__init__(compiled)
        # ``None`` re-resolves per call, so one cached engine follows
        # ``REPRO_THREADS`` changes; an explicit count is pinned.
        self._threads = None if threads is None else max(1, int(threads))
        self._inners: List[FusedBackend] = [self._make_inner(compiled)]
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_size = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _make_inner(compiled: CompiledNetlist) -> FusedBackend:
        inner = FusedBackend(compiled)
        # Tiles run on pool threads where the per-thread profiling depth
        # guard cannot see the submitting call; exempt the inners so one
        # tiled kernel records exactly one timing observation.
        inner._obs_exempt = True
        return inner

    def _inner(self, index: int) -> FusedBackend:
        while len(self._inners) <= index:
            self._inners.append(self._make_inner(self.compiled))
        return self._inners[index]

    def _executor(self, n_workers: int) -> ThreadPoolExecutor:
        if self._pool is None or self._pool_size < n_workers:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
            self._pool = ThreadPoolExecutor(
                max_workers=n_workers, thread_name_prefix="repro-threaded"
            )
            self._pool_size = n_workers
        return self._pool

    def _grid(
        self, n_rows: int, n_words: int
    ) -> Optional[List[Tuple[int, int, int, int]]]:
        """(row_lo, row_hi, word_lo, word_hi) tiles, or ``None`` to run
        the plain fused path (single thread / too little work)."""
        n_threads = resolve_threads(self._threads)
        if n_threads <= 1 or n_rows * n_words < PARALLEL_MIN_CELLS:
            return None
        if n_words >= n_threads:
            # Word-axis tiles: uniform cost, no plan slicing needed.
            return [
                (0, n_rows, lo, hi) for lo, hi in _bounds(n_words, n_threads)
            ]
        row_parts = max(1, n_threads // max(1, n_words))
        return [
            (rlo, rhi, wlo, whi)
            for rlo, rhi in _bounds(n_rows, row_parts)
            for wlo, whi in _bounds(n_words, n_words)
        ]

    def _run_tiles(self, tiles, task) -> None:
        pool = self._executor(len(tiles))
        futures = [
            pool.submit(task, i, tile) for i, tile in enumerate(tiles)
        ]
        for future in futures:
            future.result()

    def _tile_words(self, words: np.ndarray, tiles) -> List[np.ndarray]:
        """Per-tile word views, cached per (words identity, grid).

        Handing the *same* view objects to the inner backends on every
        call lets their per-chunk golden caches hit across the fault
        batches of one campaign word chunk (the fused cache keys on
        array identity plus a content snapshot, so in-place mutation by
        the caller still invalidates correctly).
        """
        key = tuple((wlo, whi) for _, _, wlo, whi in tiles)
        cached = getattr(self, "_view_cache", None)
        if cached is not None and cached[0] is words and cached[1] == key:
            return cached[2]
        views = [words[:, wlo:whi] for _, _, wlo, whi in tiles]
        self._view_cache = (words, key, views)
        return views

    # ------------------------------------------------------------------
    # Primitive kernels
    # ------------------------------------------------------------------
    def run_words(self, words: np.ndarray) -> np.ndarray:
        tiles = self._grid(1, words.shape[1])
        if tiles is None or len(tiles) <= 1:
            return self._inner(0).run_words(words)
        out = np.empty((self.compiled.n_nets, words.shape[1]), dtype=np.uint64)
        views = self._tile_words(words, tiles)

        def task(i, tile):
            _, _, wlo, whi = tile
            out[:, wlo:whi] = self._inner(i).run_words(views[i])

        self._run_tiles(tiles, task)
        return out

    def run_matrix(
        self, words: np.ndarray, plan: OverridePlan, n_rows: int
    ) -> np.ndarray:
        tiles = self._grid(n_rows, words.shape[1])
        if tiles is None or len(tiles) <= 1:
            return self._inner(0).run_matrix(words, plan, n_rows)
        out = np.empty(
            (self.compiled.n_nets, n_rows, words.shape[1]), dtype=np.uint64
        )
        views = self._tile_words(words, tiles)

        def task(i, tile):
            rlo, rhi, wlo, whi = tile
            sub = plan if (rlo, rhi) == (0, n_rows) else slice_plan(plan, rlo, rhi)
            out[:, rlo:rhi, wlo:whi] = self._inner(i).run_matrix(
                views[i], sub, rhi - rlo
            )

        self._run_tiles(tiles, task)
        return out

    # ------------------------------------------------------------------
    # Derived kernels
    # ------------------------------------------------------------------
    def run_detect(
        self, words: np.ndarray, plan: OverridePlan, n_rows: int
    ) -> np.ndarray:
        tiles = self._grid(n_rows, words.shape[1])
        if tiles is None or len(tiles) <= 1:
            return self._inner(0).run_detect(words, plan, n_rows)
        out = np.empty((n_rows, words.shape[1]), dtype=np.uint64)
        views = self._tile_words(words, tiles)

        def task(i, tile):
            rlo, rhi, wlo, whi = tile
            sub = plan if (rlo, rhi) == (0, n_rows) else slice_plan(plan, rlo, rhi)
            out[rlo:rhi, wlo:whi] = self._inner(i).run_detect(
                views[i], sub, rhi - rlo
            )

        self._run_tiles(tiles, task)
        return out

    def run_detect_sparse(
        self,
        words: np.ndarray,
        plan: OverridePlan,
        n_rows: int,
        gates: np.ndarray,
        out_ids=None,
    ) -> np.ndarray:
        tiles = self._grid(n_rows, words.shape[1])
        if tiles is None or len(tiles) <= 1:
            return self._inner(0).run_detect_sparse(
                words, plan, n_rows, gates, out_ids
            )
        out = np.empty((n_rows, words.shape[1]), dtype=np.uint64)
        views = self._tile_words(words, tiles)

        def task(i, tile):
            rlo, rhi, wlo, whi = tile
            sub = plan if (rlo, rhi) == (0, n_rows) else slice_plan(plan, rlo, rhi)
            out[rlo:rhi, wlo:whi] = self._inner(i).run_detect_sparse(
                views[i], sub, rhi - rlo, gates, out_ids
            )

        self._run_tiles(tiles, task)
        return out

    def run_outputs(
        self, words: np.ndarray, plan: OverridePlan, n_rows: int
    ) -> np.ndarray:
        tiles = self._grid(n_rows, words.shape[1])
        if tiles is None or len(tiles) <= 1:
            return self._inner(0).run_outputs(words, plan, n_rows)
        out = np.empty(
            (len(self._output_ids), n_rows, words.shape[1]), dtype=np.uint64
        )
        views = self._tile_words(words, tiles)

        def task(i, tile):
            rlo, rhi, wlo, whi = tile
            sub = plan if (rlo, rhi) == (0, n_rows) else slice_plan(plan, rlo, rhi)
            out[:, rlo:rhi, wlo:whi] = self._inner(i).run_outputs(
                views[i], sub, rhi - rlo
            )

        self._run_tiles(tiles, task)
        return out
