"""Optional CuPy (GPU) execution backend.

The fault-major matrix walk maps directly onto a GPU: every
``(row, word)`` cell is independent, uint64 bitwise ops are native, and
the per-gate dispatch is the same program the NumPy backends run --
CuPy's ``bitwise_and``/``or``/``xor`` ufuncs evaluate one whole
``(n_rows, n_words)`` slab per gate on device.  The backend consumes
exactly the arrays the rest of the tier consumes: the flat
:class:`~repro.gates.compile.CompiledNetlist` gate program and the
:class:`~repro.gates.backends.plan.OverridePlan` row maps (uploaded
once per plan and cached, so a campaign's repeated fault batches pay a
single host-to-device transfer each).

Per the usual GPU discipline, data stays resident: the input words are
uploaded once per chunk (cached on identity like the fused golden
cache), the entire gate walk runs on device, and the derived
:meth:`CupyBackend.run_detect` reduces to detection words *on device*
so only the ``(n_rows, n_words)`` result crosses the bus -- never the
``(n_nets, n_rows, n_words)`` matrix.

CuPy is an *optional* dependency: when it is not importable, or
importable but without a usable CUDA device, this module still imports
cleanly, exposes ``CupyBackend = None`` plus
:data:`UNAVAILABLE_REASON`, and the registry reports the backend
unavailable with that reason (mirroring
:mod:`repro.gates.backends.numba_backend`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gates.backends.base import Backend, gate_program
from repro.gates.backends.plan import OverridePlan
from repro.gates.compile import OP_AND, OP_OR, OP_XOR, CompiledNetlist

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy

    try:
        if cupy.cuda.runtime.getDeviceCount() < 1:
            cupy = None
            UNAVAILABLE_REASON: Optional[str] = (
                "cupy is installed but no CUDA device is present"
            )
        else:
            UNAVAILABLE_REASON = None
    except Exception as exc:  # CUDARuntimeError and driver-load failures
        cupy = None
        UNAVAILABLE_REASON = f"cupy is installed but CUDA is unusable: {exc}"
except ImportError:  # pragma: no cover - the common CI case
    cupy = None
    UNAVAILABLE_REASON = "cupy is not installed"


if cupy is None:
    CupyBackend = None
else:  # pragma: no cover - exercised only on a GPU host

    _UFUNCS = {
        OP_AND: cupy.bitwise_and,
        OP_OR: cupy.bitwise_or,
        OP_XOR: cupy.bitwise_xor,
    }

    #: host ufunc -> base opcode, to re-key the shared gate program.
    _HOST_OPS = {
        np.bitwise_and: OP_AND,
        np.bitwise_or: OP_OR,
        np.bitwise_xor: OP_XOR,
    }

    class CupyBackend(Backend):
        """Device-resident gate walk; bit-identical to the CPU backends."""

        name = "cupy"

        def __init__(self, compiled: CompiledNetlist) -> None:
            super().__init__(compiled)
            # Re-key the host gate program onto cupy ufuncs once.
            self._program = [
                (
                    None if ufunc is None else _UFUNCS[_HOST_OPS[ufunc]],
                    invert,
                    operand_ids,
                    out_id,
                )
                for ufunc, invert, operand_ids, out_id in gate_program(compiled)
            ]
            self._words_cache = None  # (host ref, host snapshot, device copy)
            self._plan_cache = None  # (plan ref, device stem/branch maps)

        # ----------------------------------------------------------
        def _device_words(self, words: np.ndarray):
            cached = self._words_cache
            if (
                cached is not None
                and cached[0] is words
                and np.array_equal(words, cached[1])
            ):
                return cached[2]
            dev = cupy.asarray(words)
            self._words_cache = (words, words.copy(), dev)
            return dev

        def _device_plan(self, plan: OverridePlan):
            cached = self._plan_cache
            if cached is not None and cached[0] is plan:
                return cached[1], cached[2]
            stem = {
                nid: (cupy.asarray(rows, dtype=cupy.intp), cupy.asarray(consts))
                for nid, (rows, consts) in plan.stem.items()
            }
            branch = {
                gate: {
                    pin: (cupy.asarray(rows, dtype=cupy.intp), cupy.asarray(consts))
                    for pin, (rows, consts) in pins.items()
                }
                for gate, pins in plan.branch_by_gate.items()
            }
            self._plan_cache = (plan, stem, branch)
            return stem, branch

        # ----------------------------------------------------------
        def _walk(self, dev_words, stems, branches, n_rows: int):
            """The python_loop matrix walk, on device."""
            c = self.compiled
            n_words = dev_words.shape[1]
            vals = cupy.empty((c.n_nets, n_rows, n_words), dtype=cupy.uint64)
            for k, nid in enumerate(self._input_ids):
                vals[nid] = dev_words[k]
                entry = stems.get(nid)
                if entry is not None:
                    vals[nid][entry[0]] = entry[1]
            for g, (ufunc, invert, operand_ids, out_id) in enumerate(
                self._program
            ):
                gate_branches = branches.get(g)
                if gate_branches is None:
                    pins = [vals[nid] for nid in operand_ids]
                else:
                    pins = []
                    for pin, nid in enumerate(operand_ids):
                        entry = gate_branches.get(pin)
                        if entry is None:
                            pins.append(vals[nid])
                        else:
                            faulted = vals[nid].copy()
                            faulted[entry[0]] = entry[1]
                            pins.append(faulted)
                out = vals[out_id]
                if ufunc is None:  # BUF / NOT
                    if invert:
                        cupy.invert(pins[0], out=out)
                    else:
                        cupy.copyto(out, pins[0])
                else:
                    ufunc(pins[0], pins[1], out=out)
                    for pv in pins[2:]:
                        ufunc(out, pv, out=out)
                    if invert:
                        cupy.invert(out, out=out)
                entry = stems.get(out_id)
                if entry is not None:
                    out[entry[0]] = entry[1]
            return vals

        # ----------------------------------------------------------
        # Primitive kernels
        # ----------------------------------------------------------
        def run_words(self, words: np.ndarray) -> np.ndarray:
            dev = self._walk(self._device_words(words), {}, {}, 1)
            return cupy.asnumpy(dev[:, 0, :])

        def run_matrix(
            self, words: np.ndarray, plan: OverridePlan, n_rows: int
        ) -> np.ndarray:
            stems, branches = self._device_plan(plan)
            dev = self._walk(self._device_words(words), stems, branches, n_rows)
            return cupy.asnumpy(dev)

        # ----------------------------------------------------------
        # Derived kernels -- reduce on device, transfer only the result
        # ----------------------------------------------------------
        def run_outputs(
            self, words: np.ndarray, plan: OverridePlan, n_rows: int
        ) -> np.ndarray:
            stems, branches = self._device_plan(plan)
            dev = self._walk(self._device_words(words), stems, branches, n_rows)
            return cupy.asnumpy(dev[cupy.asarray(self._output_ids, dtype=cupy.intp)])

        def run_detect(
            self, words: np.ndarray, plan: OverridePlan, n_rows: int
        ) -> np.ndarray:
            stems, branches = self._device_plan(plan)
            # Ride one golden row along, as the base implementation does,
            # but OR-reduce the output diffs before leaving the device.
            dev = self._walk(
                self._device_words(words), stems, branches, n_rows + 1
            )
            diff = cupy.zeros((n_rows, words.shape[1]), dtype=cupy.uint64)
            for out_id in self._output_ids:
                out = dev[out_id]
                diff |= out[:-1] ^ out[-1]
            return cupy.asnumpy(diff)
