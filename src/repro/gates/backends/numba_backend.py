"""Optional numba-JIT execution backend.

A nopython CSR walk over the flat :class:`CompiledNetlist` arrays: one
compiled machine loop over (gate, fault row, word) replaces the NumPy
ufunc dispatch entirely, which pays off on small word counts where the
per-call overhead of the array backends dominates.  Overrides are
lowered to flat CSR arrays (per-net stem entries, per-gate branch
entries) so the kernel needs no dict lookups.

numba is an *optional* dependency: when it is not importable this
module still imports cleanly, exposes ``NumbaBackend = None`` plus
:data:`UNAVAILABLE_REASON`, and the registry reports the backend as
unavailable with that reason instead of failing at import time
(:func:`repro.gates.backends.create_backend` raises a clear
:class:`~repro.errors.SimulationError` if it is selected anyway).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gates.backends.base import Backend
from repro.gates.backends.plan import OverridePlan
from repro.gates.compile import OP_AND, OP_OR, OP_XOR, CompiledNetlist

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    UNAVAILABLE_REASON: Optional[str] = None
except ImportError:  # pragma: no cover - the common CI case
    numba = None
    UNAVAILABLE_REASON = "numba is not installed"

#: Below this many (row x word) cells the serial kernel wins: the
#: prange fork/join overhead outweighs the loop body.
PARALLEL_MIN_CELLS = 1 << 13


def _stem_csr(plan: OverridePlan, n_nets: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-net CSR of (row, stuck word) stem entries."""
    counts = np.zeros(n_nets + 1, dtype=np.int64)
    for nid, (rows, _) in plan.stem.items():
        counts[nid + 1] += len(rows)
    ptr = np.cumsum(counts)
    rows_arr = np.empty(ptr[-1], dtype=np.int64)
    vals_arr = np.empty(ptr[-1], dtype=np.uint64)
    cursor = ptr[:-1].copy()
    for nid, (rows, consts) in plan.stem.items():
        for i, r in enumerate(rows):
            slot = cursor[nid]
            rows_arr[slot] = r
            vals_arr[slot] = consts[i, 0]
            cursor[nid] += 1
    return ptr, rows_arr, vals_arr


def _branch_csr(
    plan: OverridePlan, n_gates: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-gate CSR of (pin, row, stuck word) branch entries."""
    counts = np.zeros(n_gates + 1, dtype=np.int64)
    for g, pins in plan.branch_by_gate.items():
        counts[g + 1] += sum(len(rows) for rows, _ in pins.values())
    ptr = np.cumsum(counts)
    pins_arr = np.empty(ptr[-1], dtype=np.int64)
    rows_arr = np.empty(ptr[-1], dtype=np.int64)
    vals_arr = np.empty(ptr[-1], dtype=np.uint64)
    cursor = ptr[:-1].copy()
    for g, pins in plan.branch_by_gate.items():
        for pin, (rows, consts) in pins.items():
            for i, r in enumerate(rows):
                slot = cursor[g]
                pins_arr[slot] = pin
                rows_arr[slot] = r
                vals_arr[slot] = consts[i, 0]
                cursor[g] += 1
    return ptr, pins_arr, rows_arr, vals_arr


if numba is not None:  # pragma: no cover - exercised only with numba

    @numba.njit(cache=True)
    def _matrix_kernel(
        base_ops,
        inverts,
        op_offsets,
        operands,
        gate_out_ids,
        input_ids,
        words,
        stem_ptr,
        stem_rows,
        stem_vals,
        br_ptr,
        br_pins,
        br_rows,
        br_vals,
        vals,
    ):
        n_rows = vals.shape[1]
        n_words = vals.shape[2]
        all_ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        for k in range(input_ids.shape[0]):
            nid = input_ids[k]
            for f in range(n_rows):
                for w in range(n_words):
                    vals[nid, f, w] = words[k, w]
            for s in range(stem_ptr[nid], stem_ptr[nid + 1]):
                r = stem_rows[s]
                v = stem_vals[s]
                for w in range(n_words):
                    vals[nid, r, w] = v
        n_gates = base_ops.shape[0]
        for g in range(n_gates):
            lo = op_offsets[g]
            arity = op_offsets[g + 1] - lo
            out = gate_out_ids[g]
            base = base_ops[g]
            blo, bhi = br_ptr[g], br_ptr[g + 1]
            for f in range(n_rows):
                # Pin 0, possibly branch-overridden for this row.
                nid0 = operands[lo]
                ov0 = False
                c0 = np.uint64(0)
                for s in range(blo, bhi):
                    if br_pins[s] == 0 and br_rows[s] == f:
                        ov0 = True
                        c0 = br_vals[s]
                if ov0:
                    for w in range(n_words):
                        vals[out, f, w] = c0
                else:
                    for w in range(n_words):
                        vals[out, f, w] = vals[nid0, f, w]
                for p in range(1, arity):
                    nid = operands[lo + p]
                    ovp = False
                    cp = np.uint64(0)
                    for s in range(blo, bhi):
                        if br_pins[s] == p and br_rows[s] == f:
                            ovp = True
                            cp = br_vals[s]
                    # numba treats the module-level opcode ints as
                    # compile-time constants, so this chain costs the
                    # same as hard-coded literals.
                    if base == OP_AND:
                        if ovp:
                            for w in range(n_words):
                                vals[out, f, w] &= cp
                        else:
                            for w in range(n_words):
                                vals[out, f, w] &= vals[nid, f, w]
                    elif base == OP_OR:
                        if ovp:
                            for w in range(n_words):
                                vals[out, f, w] |= cp
                        else:
                            for w in range(n_words):
                                vals[out, f, w] |= vals[nid, f, w]
                    elif base == OP_XOR:
                        if ovp:
                            for w in range(n_words):
                                vals[out, f, w] ^= cp
                        else:
                            for w in range(n_words):
                                vals[out, f, w] ^= vals[nid, f, w]
                if inverts[g]:
                    for w in range(n_words):
                        vals[out, f, w] = vals[out, f, w] ^ all_ones
            for s in range(stem_ptr[out], stem_ptr[out + 1]):
                r = stem_rows[s]
                v = stem_vals[s]
                for w in range(n_words):
                    vals[out, r, w] = v


if numba is not None:  # pragma: no cover - exercised only with numba

    @numba.njit(parallel=True, cache=True)
    def _matrix_kernel_parallel(
        base_ops,
        inverts,
        op_offsets,
        operands,
        gate_out_ids,
        input_ids,
        words,
        stem_ptr,
        stem_rows,
        stem_vals,
        br_ptr,
        br_pins,
        br_rows,
        br_vals,
        vals,
    ):
        """Row-parallel variant of :func:`_matrix_kernel`.

        Fault rows are mutually independent, so the row loop moves
        outermost and runs under ``prange``; each row walks the whole
        gate program sequentially with arithmetic identical to the
        serial kernel, so results are bit-identical for any thread
        count.  Stem overrides are folded into the per-row walk (a row
        applies a stem entry iff the entry targets it), keeping every
        write inside the owning row.
        """
        n_rows = vals.shape[1]
        n_words = vals.shape[2]
        all_ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        n_gates = base_ops.shape[0]
        for f in numba.prange(n_rows):
            for k in range(input_ids.shape[0]):
                nid = input_ids[k]
                for w in range(n_words):
                    vals[nid, f, w] = words[k, w]
                for s in range(stem_ptr[nid], stem_ptr[nid + 1]):
                    if stem_rows[s] == f:
                        v = stem_vals[s]
                        for w in range(n_words):
                            vals[nid, f, w] = v
            for g in range(n_gates):
                lo = op_offsets[g]
                arity = op_offsets[g + 1] - lo
                out = gate_out_ids[g]
                base = base_ops[g]
                blo, bhi = br_ptr[g], br_ptr[g + 1]
                nid0 = operands[lo]
                ov0 = False
                c0 = np.uint64(0)
                for s in range(blo, bhi):
                    if br_pins[s] == 0 and br_rows[s] == f:
                        ov0 = True
                        c0 = br_vals[s]
                if ov0:
                    for w in range(n_words):
                        vals[out, f, w] = c0
                else:
                    for w in range(n_words):
                        vals[out, f, w] = vals[nid0, f, w]
                for p in range(1, arity):
                    nid = operands[lo + p]
                    ovp = False
                    cp = np.uint64(0)
                    for s in range(blo, bhi):
                        if br_pins[s] == p and br_rows[s] == f:
                            ovp = True
                            cp = br_vals[s]
                    if base == OP_AND:
                        if ovp:
                            for w in range(n_words):
                                vals[out, f, w] &= cp
                        else:
                            for w in range(n_words):
                                vals[out, f, w] &= vals[nid, f, w]
                    elif base == OP_OR:
                        if ovp:
                            for w in range(n_words):
                                vals[out, f, w] |= cp
                        else:
                            for w in range(n_words):
                                vals[out, f, w] |= vals[nid, f, w]
                    elif base == OP_XOR:
                        if ovp:
                            for w in range(n_words):
                                vals[out, f, w] ^= cp
                        else:
                            for w in range(n_words):
                                vals[out, f, w] ^= vals[nid, f, w]
                if inverts[g]:
                    for w in range(n_words):
                        vals[out, f, w] = vals[out, f, w] ^ all_ones
                for s in range(stem_ptr[out], stem_ptr[out + 1]):
                    if stem_rows[s] == f:
                        v = stem_vals[s]
                        for w in range(n_words):
                            vals[out, f, w] = v


def _branch_csr_subset(
    plan: OverridePlan, positions: dict, n_sub: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-gate branch CSR re-indexed to sparse sub-program positions."""
    counts = np.zeros(n_sub + 1, dtype=np.int64)
    for g, pins in plan.branch_by_gate.items():
        counts[positions[g] + 1] += sum(len(rows) for rows, _ in pins.values())
    ptr = np.cumsum(counts)
    pins_arr = np.empty(ptr[-1], dtype=np.int64)
    rows_arr = np.empty(ptr[-1], dtype=np.int64)
    vals_arr = np.empty(ptr[-1], dtype=np.uint64)
    cursor = ptr[:-1].copy()
    for g, pins in plan.branch_by_gate.items():
        j = positions[g]
        for pin, (rows, consts) in pins.items():
            for i, r in enumerate(rows):
                slot = cursor[j]
                pins_arr[slot] = pin
                rows_arr[slot] = r
                vals_arr[slot] = consts[i, 0]
                cursor[j] += 1
    return ptr, pins_arr, rows_arr, vals_arr


if numba is None:
    NumbaBackend = None
else:  # pragma: no cover - exercised only where numba is installed

    class NumbaBackend(Backend):
        """JIT CSR walk; results bit-identical to the array backends."""

        name = "numba"
        supports_sparse = True

        def __init__(self, compiled: CompiledNetlist) -> None:
            super().__init__(compiled)
            c = compiled
            self._args = (
                np.asarray(c.base_ops, dtype=np.uint8),
                np.asarray(c.inverts, dtype=np.bool_),
                np.asarray(c.operand_offsets, dtype=np.int64),
                np.asarray(c.operands, dtype=np.int64),
                np.asarray(c.gate_output_ids, dtype=np.int64),
                np.asarray(c.input_ids, dtype=np.int64),
            )
            self._sparse_cache: dict = {}
            self._golden_cache = None

        def run_words(self, words: np.ndarray) -> np.ndarray:
            return self.run_matrix(words, OverridePlan(self.compiled, []), 1)[:, 0, :]

        def run_matrix(
            self, words: np.ndarray, plan: OverridePlan, n_rows: int
        ) -> np.ndarray:
            c = self.compiled
            vals = np.empty((c.n_nets, n_rows, words.shape[1]), dtype=np.uint64)
            stem_ptr, stem_rows, stem_vals = _stem_csr(plan, c.n_nets)
            br_ptr, br_pins, br_rows, br_vals = _branch_csr(plan, c.n_gates)
            # Rows are independent, so batches big enough to amortise the
            # fork/join overhead take the prange kernel (bit-identical to
            # the serial walk -- same arithmetic, row-private writes).
            wide = (
                n_rows >= 2 * numba.get_num_threads()
                and n_rows * words.shape[1] >= PARALLEL_MIN_CELLS
            )
            kernel = _matrix_kernel_parallel if wide else _matrix_kernel
            kernel(
                *self._args,
                np.ascontiguousarray(words, dtype=np.uint64),
                stem_ptr,
                stem_rows,
                stem_vals,
                br_ptr,
                br_pins,
                br_rows,
                br_vals,
                vals,
            )
            return vals

        # ----------------------------------------------------------
        # Cone-sparse detection
        # ----------------------------------------------------------
        def _golden(self, words: np.ndarray) -> np.ndarray:
            cached = self._golden_cache
            if (
                cached is not None
                and cached[0] is words
                and np.array_equal(words, cached[1])
            ):
                return cached[2]
            golden = self.run_words(words)
            self._golden_cache = (words, words.copy(), golden)
            return golden

        def _sparse_args(self, gates: np.ndarray):
            """CSR arrays sliced to one schedule's gate subset, cached."""
            key = gates.tobytes()
            cached = self._sparse_cache.get(key)
            if cached is None:
                if len(self._sparse_cache) >= 256:
                    self._sparse_cache.clear()
                base_ops, inverts, off, operands, gate_out, input_ids = self._args
                idx = np.asarray(gates, dtype=np.int64)
                counts = off[idx + 1] - off[idx] if len(idx) else off[:0]
                sub_off = np.zeros(len(idx) + 1, dtype=np.int64)
                np.cumsum(counts, out=sub_off[1:])
                if len(idx):
                    flat = np.repeat(off[idx] - sub_off[:-1], counts) + np.arange(
                        int(counts.sum())
                    )
                    sub_ops = operands[flat]
                else:
                    sub_ops = operands[:0]
                positions = {int(g): j for j, g in enumerate(idx)}
                cached = (
                    (
                        base_ops[idx],
                        inverts[idx],
                        sub_off,
                        sub_ops,
                        gate_out[idx],
                        input_ids,
                    ),
                    positions,
                )
                self._sparse_cache[key] = cached
            return cached

        def run_detect_sparse(
            self,
            words: np.ndarray,
            plan: OverridePlan,
            n_rows: int,
            gates: np.ndarray,
            out_ids=None,
        ) -> np.ndarray:
            """Sparse walk: golden-broadcast init, then only cone gates.

            Every row starts as the fault-free run, so nets outside the
            scheduled cone are correct without being walked; the JIT
            kernels then re-evaluate just the subset arrays (the same
            serial/``prange`` machine loops as the dense path, so the
            arithmetic is bit-identical).
            """
            c = self.compiled
            n_words = words.shape[1]
            outs = self._output_ids if out_ids is None else list(out_ids)
            if not outs:
                return np.zeros((n_rows, n_words), dtype=np.uint64)
            golden = self._golden(words)
            sub_args, positions = self._sparse_args(gates)
            vals = np.empty((c.n_nets, n_rows, n_words), dtype=np.uint64)
            vals[:] = golden[:, None, :]
            stem_ptr, stem_rows, stem_vals = _stem_csr(plan, c.n_nets)
            br = _branch_csr_subset(plan, positions, len(gates))
            wide = (
                n_rows >= 2 * numba.get_num_threads()
                and n_rows * n_words >= PARALLEL_MIN_CELLS
            )
            kernel = _matrix_kernel_parallel if wide else _matrix_kernel
            kernel(
                *sub_args,
                np.ascontiguousarray(words, dtype=np.uint64),
                stem_ptr,
                stem_rows,
                stem_vals,
                *br,
                vals,
            )
            diff = np.zeros((n_rows, n_words), dtype=np.uint64)
            for out_id in outs:
                diff |= vals[out_id] ^ golden[out_id]
            return diff
