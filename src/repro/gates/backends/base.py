"""The execution-backend protocol of the bit-parallel engine.

A backend is bound to one :class:`~repro.gates.compile.CompiledNetlist`
and implements the word-level evaluation kernels every higher layer
(campaigns, coverage sweeps, fault dictionaries, ATPG) is built on.
Words are always uint64 with 64 test vectors per word, in the layout of
:func:`repro.gates.engine.exhaustive_word_range`.

Two kernels are primitive:

* :meth:`Backend.run_words` -- fault-free evaluation of every net;
* :meth:`Backend.run_matrix` -- fault-major evaluation under an
  :class:`~repro.gates.backends.plan.OverridePlan`: row ``r`` of every
  net matrix is the behaviour under the plan's ``r``-th fault group
  (rows beyond the plan are override-free, i.e. golden).

Two more are derived with default implementations here, so a minimal
backend only writes the first two; fast backends override them:

* :meth:`Backend.run_outputs` -- primary-output rows only;
* :meth:`Backend.run_detect` -- per-row *detection words*: the OR over
  primary outputs of ``faulty XOR fault-free``, which is the single
  quantity campaigns, dictionaries and ATPG actually consume.

Bit-identity contract: every backend must produce bit-identical results
on every path -- ``run_matrix`` matrices equal element-wise, derived
kernels equal element-wise.  The differential suite
(``tests/test_backends.py``) enumerates the registry and asserts this.

Aliasing contract: ``run_words`` / ``run_matrix`` may return views into
a backend-internal workspace that are only valid until the next kernel
call on the same backend; ``run_outputs`` / ``run_detect`` always
return caller-owned arrays.

Profiling contract: when :func:`repro.obs.metrics.kernel_profiling_
enabled` is true (``REPRO_METRICS``/``REPRO_TRACE`` set, or forced),
every top-level kernel call records its wall time into the
``repro_kernel_seconds{backend=...,kernel=...}`` histogram.  The hook
is woven in by :meth:`Backend.__init_subclass__`, so backends get it
for free; only the *outermost* kernel on a thread records (a default
``run_detect`` delegating to ``run_matrix`` counts once), and backends
flagged ``_obs_exempt`` -- the per-tile inner backends of
:class:`~repro.gates.backends.threaded.ThreadedBackend` -- never
record, so a tiled call is one observation, not one per tile.
"""

from __future__ import annotations

import functools
import threading
import time
from abc import ABC, abstractmethod
from typing import Callable, ClassVar, List, Optional, Tuple

import numpy as np

from repro.gates.backends.plan import OverridePlan
from repro.gates.compile import OP_AND, OP_OR, OP_XOR, CompiledNetlist
from repro.obs import metrics as _metrics

#: base opcode -> binary ufunc (None = copy/NOT) -- the single lowering
#: table shared by the NumPy backends, so a new base opcode only needs
#: registering here.
UFUNCS = {OP_AND: np.bitwise_and, OP_OR: np.bitwise_or, OP_XOR: np.bitwise_xor}

#: One resolved per-gate dispatch tuple:
#: (ufunc-or-None, invert, [operand net ids], output net id).
GateOp = Tuple[Optional[np.ufunc], bool, List[int], int]


def gate_program(compiled: CompiledNetlist) -> List[GateOp]:
    """Per-gate dispatch tuples in topological order.

    Resolved once at backend bind time so hot loops do no attribute
    lookups, slicing arithmetic or opcode branching.
    """
    offsets = compiled.operand_offsets
    return [
        (
            UFUNCS.get(int(compiled.base_ops[g])),
            bool(compiled.inverts[g]),
            [int(i) for i in compiled.operands[offsets[g] : offsets[g + 1]]],
            int(compiled.gate_output_ids[g]),
        )
        for g in range(compiled.n_gates)
    ]


#: Kernel methods eligible for timing instrumentation.
KERNEL_NAMES = (
    "run_words",
    "run_matrix",
    "run_outputs",
    "run_detect",
    "run_detect_sparse",
)

_PROFILE_LOCAL = threading.local()


def _profiled(kernel: str, fn: Callable) -> Callable:
    """Wrap one kernel method with the timing hook (idempotent)."""
    if getattr(fn, "_obs_profiled", False):
        return fn

    handle_attr = f"_obs_hist_{kernel}"

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        if getattr(self, "_obs_exempt", False) or not _metrics.kernel_profiling_enabled():
            return fn(self, *args, **kwargs)
        if getattr(_PROFILE_LOCAL, "depth", 0):
            # A derived kernel delegating to a primitive on the same
            # thread: the outer call owns the observation.
            return fn(self, *args, **kwargs)
        _PROFILE_LOCAL.depth = 1
        start = time.perf_counter()
        try:
            return fn(self, *args, **kwargs)
        finally:
            _PROFILE_LOCAL.depth = 0
            dur = time.perf_counter() - start
            # One pre-resolved handle per instance and kernel, so the
            # per-call cost is a lock plus a histogram fold.
            handle = self.__dict__.get(handle_attr)
            if handle is None:
                handle = self.__dict__[handle_attr] = _metrics.histogram_handle(
                    "repro_kernel_seconds", backend=self.name, kernel=kernel
                )
            handle.observe(dur)

    wrapper._obs_profiled = True  # type: ignore[attr-defined]
    return wrapper


class Backend(ABC):
    """One execution strategy bound to a compiled netlist."""

    #: Registry name; class attribute set by each implementation.
    name: ClassVar[str] = "abstract"

    #: When true, this instance's kernels never record timings (set on
    #: the inner per-tile backends of ThreadedBackend).
    _obs_exempt: bool = False

    #: Whether :meth:`run_detect_sparse` actually restricts evaluation
    #: to the scheduled cone gates.  The base default delegates to the
    #: dense :meth:`run_detect` (bit-identical, no savings), so the
    #: sparse/dense autotuner only *prefers* sparse on backends that
    #: set this.
    supports_sparse: ClassVar[bool] = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        for kernel in KERNEL_NAMES:
            fn = cls.__dict__.get(kernel)
            if callable(fn):
                setattr(cls, kernel, _profiled(kernel, fn))

    def __init__(self, compiled: CompiledNetlist) -> None:
        self.compiled = compiled
        self._input_ids = [int(i) for i in compiled.input_ids]
        self._output_ids = [int(i) for i in compiled.output_ids]

    # ------------------------------------------------------------------
    # Primitive kernels
    # ------------------------------------------------------------------
    @abstractmethod
    def run_words(self, words: np.ndarray) -> np.ndarray:
        """Fault-free evaluation of every net.

        ``words`` is ``(n_inputs, n_words)`` packed input rows; returns
        a ``(n_nets, n_words)`` matrix indexed by compiled net id.
        """

    @abstractmethod
    def run_matrix(
        self, words: np.ndarray, plan: OverridePlan, n_rows: int
    ) -> np.ndarray:
        """Fault-major evaluation: ``(n_nets, n_rows, n_words)``.

        Row ``r`` of every net matrix is the behaviour under the
        ``r``-th fault group of ``plan``; rows ``plan.n_rows`` and
        beyond carry no overrides and evaluate to the fault-free run
        (the campaign's ride-along golden row).
        """

    # ------------------------------------------------------------------
    # Derived kernels (default implementations)
    # ------------------------------------------------------------------
    def run_outputs(
        self, words: np.ndarray, plan: OverridePlan, n_rows: int
    ) -> np.ndarray:
        """Primary-output rows only, ``(n_outputs, n_rows, n_words)``."""
        return self.run_matrix(words, plan, n_rows)[self._output_ids]

    def run_detect(
        self, words: np.ndarray, plan: OverridePlan, n_rows: int
    ) -> np.ndarray:
        """Detection words vs the fault-free run, ``(n_rows, n_words)``.

        Lane ``v % 64`` of word ``v // 64`` in row ``r`` is set iff some
        primary output differs from the golden run for vector ``v``
        under fault group ``r``.  The default implementation rides one
        override-free golden row along the fault matrix -- exactly the
        historical campaign inner loop.
        """
        vals = self.run_matrix(words, plan, n_rows + 1)
        diff: np.ndarray = np.zeros((n_rows, words.shape[1]), dtype=np.uint64)
        for out_id in self._output_ids:
            out = vals[out_id]
            diff |= out[:-1] ^ out[-1]
        return diff

    def run_detect_sparse(
        self,
        words: np.ndarray,
        plan: OverridePlan,
        n_rows: int,
        gates: np.ndarray,
        out_ids: Optional[Tuple[int, ...]] = None,
    ) -> np.ndarray:
        """Detection words of one cone-sparse batch.

        ``gates`` is the ascending compiled gate-index array of the
        batch's union fan-out cone (see :mod:`repro.gates.sparse`):
        every gate a fault row of ``plan`` can perturb, in topological
        order.  ``out_ids`` optionally restricts the detection
        reduction to the primary-output net ids reachable from the
        batch's sites; outputs outside the cone are provably golden,
        so restricting is bit-identical.

        The default implementation ignores the schedule and delegates
        to the dense :meth:`run_detect` -- correct on any backend, so
        the sparse campaign sweep runs everywhere; backends flagged
        ``supports_sparse`` override this with a walk that only
        evaluates ``gates``.
        """
        return self.run_detect(words, plan, n_rows)


# Subclass overrides are instrumented by __init_subclass__; the derived
# kernels defined on the base itself are wrapped here so backends that
# inherit them unchanged still record.
for _kernel in ("run_outputs", "run_detect", "run_detect_sparse"):
    setattr(Backend, _kernel, _profiled(_kernel, Backend.__dict__[_kernel]))
del _kernel
