"""Pluggable execution backends for the bit-parallel engine.

The :class:`~repro.gates.backends.base.Backend` protocol separates
*what* is evaluated (the flat :class:`~repro.gates.compile.CompiledNetlist`
arrays plus :class:`~repro.gates.backends.plan.OverridePlan` fault
overrides) from *how*: every consumer of the engine -- campaigns,
coverage sweeps, fault dictionaries, ATPG -- runs unchanged on any
registered backend, and all backends are bit-identical on every path.

Registered backends:

``python_loop``
    The original per-gate NumPy ufunc loop, kept verbatim as the
    reference implementation (:mod:`.python_loop`).
``fused``
    Levelized batched evaluation with tainted-prefix fault walks and a
    persistent workspace -- the default and the fast path
    (:mod:`.fused`).
``threaded``
    Fused kernels tiled over a (fault-row x word-range) grid across a
    thread pool -- numpy's bitwise ufuncs release the GIL, so the tiles
    genuinely overlap; degrades to the plain fused path on single-core
    hosts (:mod:`.threaded`).
``numba``
    Optional JIT CSR walk (serial and ``prange`` row-parallel
    kernels); registered only when numba is importable, otherwise
    reported unavailable with a clear reason (:mod:`.numba_backend`).
``cupy``
    Optional GPU walk over the same compiled arrays and override
    plans; registered unavailable with a clear reason when CuPy or a
    CUDA device is missing (:mod:`.cupy_backend`).
``reference``
    The cell-library interpreter under the backend protocol, so
    differential tests can enumerate the registry instead of
    hand-listing oracles (:mod:`.reference`).

Selection precedence: an explicit ``backend=`` keyword anywhere in the
stack beats the ``REPRO_BACKEND`` environment variable, which beats
:data:`DEFAULT_BACKEND`.  Worker processes of sharded campaigns receive
the already-resolved name, so one flag switches the whole stack
bit-identically.  The sentinel :data:`AUTO_BACKEND` (``"auto"``) is not
a backend: entry points that accept it resolve it to a concrete name
through the shape-aware autotuner (:mod:`repro.gates.tune`) before any
evaluation happens.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

from repro.errors import SimulationError
from repro.gates.backends.base import Backend
from repro.gates.backends.plan import FaultGroup, OverridePlan
from repro.gates.backends.fused import FusedBackend
from repro.gates.backends.python_loop import PythonLoopBackend
from repro.gates.backends.reference import ReferenceBackend
from repro.gates.backends.threaded import ThreadedBackend
from repro.gates.backends import cupy_backend as _cupy_module
from repro.gates.backends import numba_backend as _numba_module
from repro.gates.compile import CompiledNetlist

#: Environment variable naming the default backend for the process.
BACKEND_ENV = "REPRO_BACKEND"

#: Built-in default when neither a keyword nor the env var selects one.
DEFAULT_BACKEND = "fused"

#: Sentinel selection resolved by the autotuner, never a registry entry.
AUTO_BACKEND = "auto"

#: name -> factory for available backends (insertion order = listing order).
_REGISTRY: Dict[str, Callable[[CompiledNetlist], Backend]] = {}

#: name -> reason for backends that are known but not usable here.
_UNAVAILABLE: Dict[str, str] = {}


def register_backend(
    name: str,
    factory: Optional[Callable[[CompiledNetlist], Backend]],
    unavailable_reason: Optional[str] = None,
) -> None:
    """Register an execution backend under ``name``.

    ``factory(compiled)`` must return a bound :class:`Backend`.  Pass
    ``factory=None`` with an ``unavailable_reason`` to register a known
    backend that cannot run in this environment (e.g. a missing
    optional dependency): selecting it raises a clear error instead of
    an import failure, and :func:`list_backends` skips it.
    """
    if factory is None:
        _UNAVAILABLE[name] = unavailable_reason or "unavailable"
        _REGISTRY.pop(name, None)
        return
    _UNAVAILABLE.pop(name, None)
    _REGISTRY[name] = factory


def list_backends() -> Tuple[str, ...]:
    """Names of the backends that can actually run here, in registry order."""
    return tuple(_REGISTRY)


def backend_unavailable_reason(name: str) -> Optional[str]:
    """Why ``name`` cannot run here (``None`` if it can, or is unknown)."""
    return _UNAVAILABLE.get(name)


def resolve_backend_name(
    backend: Optional[str] = None, allow_auto: bool = False
) -> str:
    """Resolve a backend selection to a registered name.

    Precedence: the explicit ``backend`` argument, then the
    ``REPRO_BACKEND`` environment variable, then
    :data:`DEFAULT_BACKEND`.  Unknown or unavailable selections raise
    :class:`~repro.errors.SimulationError` naming the alternatives.

    With ``allow_auto`` the sentinel :data:`AUTO_BACKEND` passes
    through unresolved -- entry points that understand it hand it to
    :func:`repro.gates.tune.resolve_plan` for a concrete choice;
    without it, ``"auto"`` reaching a layer that needs a real backend
    is an error naming the registry.
    """
    source = "backend="
    if backend is None:
        env = os.environ.get(BACKEND_ENV)
        if env:
            backend, source = env, f"{BACKEND_ENV}="
        else:
            return DEFAULT_BACKEND
    if backend == AUTO_BACKEND:
        if allow_auto:
            return AUTO_BACKEND
        raise SimulationError(
            f"backend {source}{AUTO_BACKEND!r} is a tuning sentinel, not an "
            f"execution backend; this entry point needs a concrete name "
            f"from: {list(list_backends())}"
        )
    if backend in _REGISTRY:
        return backend
    reason = _UNAVAILABLE.get(backend)
    if reason is not None:
        raise SimulationError(
            f"backend {source}{backend!r} is unavailable: {reason}; "
            f"available backends: {list(list_backends())}"
        )
    raise SimulationError(
        f"unknown backend {source}{backend!r}; "
        f"available backends: {list(list_backends())}"
    )


def create_backend(backend: Optional[str], compiled: CompiledNetlist) -> Backend:
    """Instantiate the selected backend bound to ``compiled``."""
    return _REGISTRY[resolve_backend_name(backend)](compiled)


register_backend(PythonLoopBackend.name, PythonLoopBackend)
register_backend(FusedBackend.name, FusedBackend)
register_backend(ThreadedBackend.name, ThreadedBackend)
if _numba_module.NumbaBackend is not None:
    register_backend(_numba_module.NumbaBackend.name, _numba_module.NumbaBackend)
else:
    register_backend("numba", None, _numba_module.UNAVAILABLE_REASON)
if _cupy_module.CupyBackend is not None:
    register_backend(_cupy_module.CupyBackend.name, _cupy_module.CupyBackend)
else:
    register_backend("cupy", None, _cupy_module.UNAVAILABLE_REASON)
register_backend(ReferenceBackend.name, ReferenceBackend)

__all__ = [
    "Backend",
    "OverridePlan",
    "FaultGroup",
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "AUTO_BACKEND",
    "register_backend",
    "list_backends",
    "backend_unavailable_reason",
    "resolve_backend_name",
    "create_backend",
]
