"""Levelized-fused execution backend.

Two ideas on top of the reference per-gate loop
(:mod:`repro.gates.backends.python_loop`):

**Level fusion.**  At bind time gates are grouped by (topological
level, base op, invert, arity).  Levels are the longest distance from
the primary inputs, so all gates of one group are independent and one
batched gather -> ufunc -> scatter evaluates the whole group; the
Python dispatch cost drops from O(n_gates) to O(levels x opcodes) per
evaluation.  Groups of one gate (the common case in deep carry chains)
skip the gather and operate in place on zero-copy views, so fusion
never does more memory traffic than the per-gate loop.

**Tainted-prefix fault evaluation.**  For the derived kernels
(:meth:`FusedBackend.run_detect` / :meth:`run_outputs`) the full
fault-major matrix is never materialised.  A fault row cannot differ
from the fault-free run below the topological level of its shallowest
site (:attr:`OverridePlan.row_levels`), so rows are sorted by that
level and every net carries only a *tainted prefix* of rows -- the
high-water mark ``hw[net]`` -- with the shared golden row standing in
for everything beyond.  Each gate folds its operands segment by
segment (matrix x matrix where both prefixes reach, matrix x
broadcast-golden between the marks) and override rows are fixed up
individually, so the arithmetic volume drops to the tainted fraction
of the matrix -- on the RCA-8 campaign roughly half, on shallow-site
batches far more.  Results are bit-identical to the reference loop:
untainted rows *are* the golden run.

A persistent workspace (capped at :data:`WORKSPACE_KEEP_BYTES`) backs
the matrix walks, so steady-state campaigns stop paying the
allocate/fault/trim cycle of a fresh multi-megabyte matrix per chunk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.gates.backends.base import UFUNCS, Backend, gate_program
from repro.gates.backends.plan import OverridePlan
from repro.gates.compile import CompiledNetlist

#: Largest matrix workspace kept alive across calls (bytes).  Bigger
#: evaluations fall back to transient allocations so engines cached per
#: netlist do not pin huge buffers (the same concern as the engine's
#: exhaustive-set cache guard).
WORKSPACE_KEEP_BYTES = 64 << 20

#: Below this many (row x word) cells the derived kernels skip the
#: tainted-prefix walk and ride the batched matrix path: at tiny sizes
#: the walk's per-gate slicing costs more Python time than the whole
#: evaluation, while the level-batched matrix walk stays O(levels x
#: opcodes) per call.
SMALL_DETECT_CELLS = 1 << 13

#: Above this many (row x word) cells the sparse walk stops testing for
#: dead-effect early exit: the convergence probe compares every touched
#: prefix against golden, which only pays for itself on the small
#: batches of incremental re-runs and per-fault probes.
SPARSE_EXIT_CELLS = 1 << 11

# Work counters of the cone-sparse tier (always live, surfaced in the
# telemetry snapshot and the BENCH_*.json records).  Resolved lazily so
# importing the backend never touches the metrics registry.
_SPARSE_HANDLES = None


def _note_sparse(evaluated: int, skipped: int, early_exit: bool) -> None:
    global _SPARSE_HANDLES
    if _SPARSE_HANDLES is None:
        from repro.obs import metrics

        _SPARSE_HANDLES = (
            metrics.counter_handle("repro_sparse_gates_evaluated_total"),
            metrics.counter_handle("repro_sparse_gates_skipped_total"),
            metrics.counter_handle("repro_sparse_early_exits_total"),
        )
    if evaluated:
        _SPARSE_HANDLES[0].inc(evaluated)
    if skipped:
        _SPARSE_HANDLES[1].inc(skipped)
    if early_exit:
        _SPARSE_HANDLES[2].inc()


class _Group:
    """One fused (level, opcode) batch of independent gates."""

    __slots__ = ("level", "ufunc", "invert", "arity", "srcs", "outs", "gates")

    def __init__(self, level, ufunc, invert, arity, srcs, outs, gates):
        self.level = level
        self.ufunc = ufunc
        self.invert = invert
        self.arity = arity
        self.srcs = srcs  # per-pin operand net ids, (n_gates_in_group,)
        self.outs = outs  # output net ids, (n_gates_in_group,)
        self.gates = gates  # compiled gate indices, list


class FusedBackend(Backend):
    """Batched per-level evaluation with tainted-prefix fault walks."""

    name = "fused"
    supports_sparse = True

    def __init__(self, compiled: CompiledNetlist) -> None:
        super().__init__(compiled)
        offsets = compiled.operand_offsets
        levels = compiled.gate_levels
        grouped: Dict[Tuple[int, int, bool, int], List[int]] = {}
        for g in range(compiled.n_gates):
            key = (
                int(levels[g]),
                int(compiled.base_ops[g]),
                bool(compiled.inverts[g]),
                int(offsets[g + 1] - offsets[g]),
            )
            grouped.setdefault(key, []).append(g)
        self._schedule: List[_Group] = []
        for (level, base, invert, arity), gates in sorted(grouped.items()):
            srcs = [
                np.array(
                    [int(compiled.operands[offsets[g] + p]) for g in gates],
                    dtype=np.intp,
                )
                for p in range(arity)
            ]
            outs = np.array(
                [int(compiled.gate_output_ids[g]) for g in gates], dtype=np.intp
            )
            self._schedule.append(
                _Group(level, UFUNCS.get(base), invert, arity, srcs, outs, gates)
            )
        self._input_id_array = np.asarray(compiled.input_ids, dtype=np.intp)
        # Flat per-gate dispatch (topological order) for the prefix
        # walk, where gates are sliced individually by high-water mark.
        self._flat_program = [
            (g, *op) for g, op in enumerate(gate_program(compiled))
        ]
        self._ws: Optional[np.ndarray] = None
        # Fault-free run of the most recent word chunk: campaigns call
        # the detect kernel several times per chunk (one per fault
        # batch), and the golden evaluation is shared.  Holds (words
        # reference, words snapshot, golden): the reference keeps the id
        # stable and the snapshot detects in-place mutation by callers.
        self._golden_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        # Cone-restricted sub-programs keyed on the schedule's gate
        # index bytes; campaigns reuse one schedule across many word
        # sub-chunks, so the slicing happens once per batch shape.
        self._sparse_programs: Dict[bytes, Tuple[list, frozenset]] = {}
        self._driver_of: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _workspace(self, n_rows: int, n_words: int) -> np.ndarray:
        need = self.compiled.n_nets * n_rows * n_words
        if need * 8 > WORKSPACE_KEEP_BYTES:
            return np.empty((self.compiled.n_nets, n_rows, n_words), dtype=np.uint64)
        if self._ws is None or self._ws.size < need:
            self._ws = np.empty(need, dtype=np.uint64)
        return self._ws[:need].reshape(self.compiled.n_nets, n_rows, n_words)

    # ------------------------------------------------------------------
    # Primitive kernels
    # ------------------------------------------------------------------
    def run_words(self, words: np.ndarray) -> np.ndarray:
        vals = np.empty((self.compiled.n_nets, words.shape[1]), dtype=np.uint64)
        vals[self._input_id_array] = words
        for grp in self._schedule:
            ufunc = grp.ufunc
            if len(grp.gates) == 1:
                out = vals[grp.outs[0]]
                if ufunc is None:
                    if grp.invert:
                        np.invert(vals[grp.srcs[0][0]], out=out)
                    else:
                        np.copyto(out, vals[grp.srcs[0][0]])
                else:
                    ufunc(vals[grp.srcs[0][0]], vals[grp.srcs[1][0]], out=out)
                    for p in range(2, grp.arity):
                        ufunc(out, vals[grp.srcs[p][0]], out=out)
                    if grp.invert:
                        np.invert(out, out=out)
                continue
            acc = vals[grp.srcs[0]]  # gather copy
            if ufunc is None:
                if grp.invert:
                    np.invert(acc, out=acc)
            else:
                for p in range(1, grp.arity):
                    ufunc(acc, vals[grp.srcs[p]], out=acc)
                if grp.invert:
                    np.invert(acc, out=acc)
            vals[grp.outs] = acc
        return vals

    def run_matrix(
        self, words: np.ndarray, plan: OverridePlan, n_rows: int
    ) -> np.ndarray:
        """Full fault-major matrix via the batched level schedule.

        Semantically identical to the reference loop; returns a view of
        the backend workspace (valid until the next kernel call).
        """
        n_words = words.shape[1]
        stems = plan.stem
        branches = plan.branch_by_gate
        apply = plan.apply
        vals = self._workspace(n_rows, n_words)
        vals[self._input_id_array] = words[:, None, :]
        for nid in self._input_ids:
            entry = stems.get(nid)
            if entry is not None:
                apply(entry, vals[nid])
        for grp in self._schedule:
            ufunc = grp.ufunc
            if len(grp.gates) == 1:
                g = grp.gates[0]
                gate_branches = branches.get(g)
                pins = []
                for p in range(grp.arity):
                    pv = vals[grp.srcs[p][0]]
                    if gate_branches is not None:
                        entry = gate_branches.get(p)
                        if entry is not None:
                            pv = pv.copy()
                            apply(entry, pv)
                    pins.append(pv)
                out = vals[grp.outs[0]]
                if ufunc is None:
                    if grp.invert:
                        np.invert(pins[0], out=out)
                    else:
                        np.copyto(out, pins[0])
                else:
                    ufunc(pins[0], pins[1], out=out)
                    for pv in pins[2:]:
                        ufunc(out, pv, out=out)
                    if grp.invert:
                        np.invert(out, out=out)
                entry = stems.get(int(grp.outs[0]))
                if entry is not None:
                    apply(entry, out)
                continue
            dirty = branches and any(g in branches for g in grp.gates)
            acc = vals[grp.srcs[0]]  # gather copy (n_gates, n_rows, n_words)
            if dirty:
                for j, g in enumerate(grp.gates):
                    gb = branches.get(g)
                    if gb is not None:
                        entry = gb.get(0)
                        if entry is not None:
                            apply(entry, acc[j])
            if ufunc is None:
                if grp.invert:
                    np.invert(acc, out=acc)
            else:
                for p in range(1, grp.arity):
                    # The gather is advanced indexing, so ``b`` is
                    # already a fresh copy safe to override in place.
                    b = vals[grp.srcs[p]]
                    if dirty:
                        for j, g in enumerate(grp.gates):
                            gb = branches.get(g)
                            if gb is not None:
                                entry = gb.get(p)
                                if entry is not None:
                                    apply(entry, b[j])
                    ufunc(acc, b, out=acc)
                if grp.invert:
                    np.invert(acc, out=acc)
            vals[grp.outs] = acc
            for j in range(len(grp.gates)):
                entry = stems.get(int(grp.outs[j]))
                if entry is not None:
                    apply(entry, vals[grp.outs[j]])
        return vals

    # ------------------------------------------------------------------
    # Tainted-prefix walk and the derived kernels built on it
    # ------------------------------------------------------------------
    def _golden(self, words: np.ndarray) -> np.ndarray:
        """Fault-free run of ``words``, cached per chunk array.

        Campaigns stream one word chunk through several fault batches;
        the shared golden run is computed once per chunk.  The cache
        keeps a strong reference to the words array (so the identity
        cannot be recycled) plus a content snapshot: a caller mutating
        its buffer in place between calls gets a fresh golden run, not
        a stale one.  The snapshot compare is O(words) -- far below the
        run it saves.
        """
        cached = self._golden_cache
        if (
            cached is not None
            and cached[0] is words
            and np.array_equal(words, cached[1])
        ):
            return cached[2]
        golden = self.run_words(words)
        self._golden_cache = (words, words.copy(), golden)
        return golden

    def _prefix_walk(
        self,
        words: np.ndarray,
        plan: OverridePlan,
        n_rows: int,
        program: Optional[list] = None,
        stats: Optional[dict] = None,
    ):
        """Evaluate only the tainted row prefix of every net.

        Rows are internally permuted ascending by first-divergence
        level (:attr:`OverridePlan.row_levels`); returns ``(vals, hw,
        golden, inv, identity)`` where ``vals[net][:hw[net]]`` holds
        the permuted tainted rows and everything beyond equals
        ``golden[net]``.  The walk is the per-gate reference loop
        sliced to each gate's high-water mark: operands whose mark lags
        are first topped up with broadcast golden rows, so every ufunc
        still runs on plain contiguous slices.

        ``program`` restricts the walk to a cone-sparse sub-program
        (ascending compiled order); gates outside it are provably
        golden under ``plan``, which the sparse schedule guarantees.
        With ``stats`` (sparse calls) the walk additionally probes for
        *dead-effect early exit* on small workloads: past the deepest
        override level, at each level boundary, if every materialised
        prefix of a non-overridden net has reconverged to golden the
        remaining gates cannot diverge either, so the walk stops and
        reports the skip in ``stats``.
        """
        depth_plus = self.compiled.depth + 1
        row_levels = np.full(n_rows, depth_plus, dtype=np.int64)
        row_levels[: plan.n_rows] = plan.row_levels[:n_rows]
        order = np.argsort(row_levels, kind="stable")
        identity = bool(np.array_equal(order, np.arange(n_rows)))
        if identity:
            inv = order
            stems = plan.stem
            branches = plan.branch_by_gate
        else:
            inv = np.empty_like(order)
            inv[order] = np.arange(n_rows)

            def remap(entry):
                rows, consts = entry
                return ([int(inv[r]) for r in rows], consts)

            stems = {nid: remap(e) for nid, e in plan.stem.items()}
            branches = {
                g: {p: remap(e) for p, e in pins.items()}
                for g, pins in plan.branch_by_gate.items()
            }
        golden = self._golden(words)
        vals = self._workspace(n_rows, words.shape[1])
        hw = [0] * self.compiled.n_nets
        for nid, entry in stems.items():
            if hw[nid] == 0 and not self.compiled.net_levels[nid]:
                # Stem on a primary input (or level-0 net): materialise
                # up to the deepest overridden row, golden in between.
                rows, consts = entry
                top = max(rows) + 1
                vals[nid][:top] = golden[nid]
                vals[nid][rows] = consts
                hw[nid] = top
        entries = self._flat_program if program is None else program
        probe_exit = (
            stats is not None and n_rows * words.shape[1] <= SPARSE_EXIT_CELLS
        )
        if probe_exit:
            levels_arr = self.compiled.gate_levels
            exit_level = self._deepest_override_level(stems, branches)
            stem_nets = set(stems)
            touched = list(stem_nets)
            prev_level = -1
        for idx, (g, ufunc, invert, operand_ids, out_id) in enumerate(entries):
            if probe_exit:
                lvl = int(levels_arr[g])
                if lvl != prev_level:
                    if prev_level >= exit_level and self._converged(
                        touched, stem_nets, vals, hw, golden
                    ):
                        stats["early_exit"] = True
                        stats["skipped"] = len(entries) - idx
                        break
                    prev_level = lvl
            gate_branches = branches.get(g)
            stem_entry = stems.get(out_id)
            m_in = 0
            for nid in operand_ids:
                h = hw[nid]
                if h > m_in:
                    m_in = h
            n_override = 0
            if gate_branches is not None:
                # Branch-overridden rows must be evaluated even when no
                # operand is tainted yet.
                for rows, _ in gate_branches.values():
                    n_override += len(rows)
                    top = max(rows) + 1
                    if top > m_in:
                        m_in = top
            out_rows = vals[out_id]
            if m_in:
                # Top up lagging operands with golden rows so the gate
                # folds over uniform contiguous slices.
                for nid in operand_ids:
                    h = hw[nid]
                    if h < m_in:
                        vals[nid][h:m_in] = golden[nid]
                        hw[nid] = m_in
                        if probe_exit and h == 0:
                            touched.append(nid)
                dense = gate_branches is not None and n_override * 8 >= m_in
                if dense:
                    # Many overridden rows: recompute the whole prefix
                    # with overridden pin copies, as the reference loop.
                    pins = []
                    for pin, nid in enumerate(operand_ids):
                        pv = vals[nid][:m_in]
                        entry = gate_branches.get(pin)
                        if entry is not None:
                            pv = pv.copy()
                            plan.apply(entry, pv)
                        pins.append(pv)
                else:
                    pins = [vals[nid][:m_in] for nid in operand_ids]
                if ufunc is None:
                    if invert:
                        np.invert(pins[0], out=out_rows[:m_in])
                    else:
                        np.copyto(out_rows[:m_in], pins[0])
                else:
                    out_seg = out_rows[:m_in]
                    ufunc(pins[0], pins[1], out=out_seg)
                    for pv in pins[2:]:
                        ufunc(out_seg, pv, out=out_seg)
                    if invert:
                        np.invert(out_seg, out=out_seg)
                if gate_branches is not None and not dense:
                    self._fix_branch_rows(
                        ufunc, invert, operand_ids, gate_branches, vals, out_rows
                    )
            if stem_entry is not None:
                rows, consts = stem_entry
                top = max(rows) + 1
                if top > m_in:
                    out_rows[m_in:top] = golden[out_id]
                    m_in = top
                out_rows[rows] = consts
            if probe_exit and m_in and not hw[out_id]:
                touched.append(out_id)
            hw[out_id] = m_in
        return vals, hw, golden, inv, identity

    def _deepest_override_level(self, stems, branches) -> int:
        """Level past which ``plan`` can no longer inject divergence.

        Stems stay pinned in the value matrix, so their influence ends
        at their *deepest reader*; branches end at the overridden gate.
        """
        compiled = self.compiled
        deepest = -1
        for nid in stems:
            lo = int(compiled.fanout_offsets[nid])
            hi = int(compiled.fanout_offsets[nid + 1])
            if hi > lo:
                lvl = int(compiled.gate_levels[compiled.fanout_gates[lo:hi]].max())
            else:
                lvl = int(compiled.net_levels[nid])
            if lvl > deepest:
                deepest = lvl
        for g in branches:
            lvl = int(compiled.gate_levels[g])
            if lvl > deepest:
                deepest = lvl
        return deepest

    @staticmethod
    def _converged(touched, stem_nets, vals, hw, golden) -> bool:
        """True when every materialised non-stem prefix equals golden.

        Stem-overridden nets are excluded: past their deepest reader
        (the caller checks the level first) they are never read again,
        and their pinned rows differ from golden by construction.
        """
        for nid in touched:
            if nid in stem_nets:
                continue
            h = hw[nid]
            if h and bool((vals[nid][:h] != golden[nid]).any()):
                return False
        return True

    @staticmethod
    def _fix_branch_rows(ufunc, invert, operand_ids, gate_branches, vals, out_rows):
        """Vectorised sparse fix-up of branch-overridden rows.

        The gate's prefix was already folded override-free; each entry's
        rows are recomputed with the overridden pin replaced by its
        stuck column.  Rows overridden on several pins at once fold row
        by row.
        """
        entries = list(gate_branches.items())
        collisions = set()
        if len(entries) > 1:
            seen = set()
            for _, (rows, _) in entries:
                for r in rows:
                    if r in seen:
                        collisions.add(r)
                    seen.add(r)
        for pin, (rows, consts) in entries:
            if collisions:
                keep = [i for i, r in enumerate(rows) if r not in collisions]
                if not keep:
                    continue
                rows = [rows[i] for i in keep]
                consts = consts[keep]
            pvals = [
                consts if p == pin else vals[nid][rows]
                for p, nid in enumerate(operand_ids)
            ]
            if ufunc is None:
                current = pvals[0]
            else:
                current = ufunc(pvals[0], pvals[1])
                for v in pvals[2:]:
                    current = ufunc(current, v, out=current)
            out_rows[rows] = ~current if invert else current
        for r in collisions:
            pin_consts = {
                pin: consts[rows.index(r), 0]
                for pin, (rows, consts) in entries
                if r in rows
            }
            rvals = [
                pin_consts.get(p, vals[nid][r])
                for p, nid in enumerate(operand_ids)
            ]
            current = rvals[0]
            if ufunc is not None:
                for v in rvals[1:]:
                    current = ufunc(current, v)
            if invert:
                current = ~current
            if isinstance(current, np.ndarray):
                np.copyto(out_rows[r], current)
            else:
                out_rows[r][...] = current

    def run_detect(
        self, words: np.ndarray, plan: OverridePlan, n_rows: int
    ) -> np.ndarray:
        if n_rows * words.shape[1] < SMALL_DETECT_CELLS:
            return super().run_detect(words, plan, n_rows)
        vals, hw, golden, inv, identity = self._prefix_walk(words, plan, n_rows)
        n_words = words.shape[1]
        diff = np.zeros((n_rows, n_words), dtype=np.uint64)
        scratch = np.empty((n_rows, n_words), dtype=np.uint64)
        for out_id in self._output_ids:
            h = hw[out_id]
            if h:
                np.bitwise_xor(vals[out_id][:h], golden[out_id], out=scratch[:h])
                np.bitwise_or(diff[:h], scratch[:h], out=diff[:h])
        return diff if identity else diff[inv]

    def _sparse_program(self, gates: np.ndarray) -> Tuple[list, frozenset]:
        """Cone-restricted sub-program for one schedule batch, cached."""
        key = gates.tobytes()
        cached = self._sparse_programs.get(key)
        if cached is None:
            if len(self._sparse_programs) >= 256:
                self._sparse_programs.clear()
            program = [self._flat_program[int(g)] for g in gates]
            cached = (program, frozenset(int(g) for g in gates))
            self._sparse_programs[key] = cached
        return cached

    def _check_sparse_plan(self, plan: OverridePlan, gate_set: frozenset) -> None:
        """Guard the schedule invariants a sparse walk relies on.

        Every branch-site gate and every non-input stem's driver gate
        must be inside the batch cone; :func:`repro.gates.sparse.build_
        schedule` guarantees this, the check catches hand-built calls.
        """
        for g in plan.branch_by_gate:
            if g not in gate_set:
                raise SimulationError(
                    f"sparse schedule does not cover branch-override gate {g}"
                )
        if plan.stem:
            if self._driver_of is None:
                driver = np.full(self.compiled.n_nets, -1, dtype=np.int64)
                driver[self.compiled.gate_output_ids] = np.arange(
                    self.compiled.n_gates, dtype=np.int64
                )
                self._driver_of = driver
            for nid in plan.stem:
                if self.compiled.net_levels[nid] and (
                    int(self._driver_of[nid]) not in gate_set
                ):
                    raise SimulationError(
                        f"sparse schedule does not cover the driver of "
                        f"stem-override net {nid}"
                    )

    def run_detect_sparse(
        self,
        words: np.ndarray,
        plan: OverridePlan,
        n_rows: int,
        gates: np.ndarray,
        out_ids: Optional[Tuple[int, ...]] = None,
    ) -> np.ndarray:
        n_words = words.shape[1]
        n_total = self.compiled.n_gates
        outs = self._output_ids if out_ids is None else list(out_ids)
        if not outs:
            # No primary output is reachable from the batch's sites:
            # nothing can detect, nothing needs evaluating.
            _note_sparse(0, n_total, False)
            return np.zeros((n_rows, n_words), dtype=np.uint64)
        program, gate_set = self._sparse_program(gates)
        self._check_sparse_plan(plan, gate_set)
        stats = {"early_exit": False, "skipped": 0}
        vals, hw, golden, inv, identity = self._prefix_walk(
            words, plan, n_rows, program=program, stats=stats
        )
        diff = np.zeros((n_rows, n_words), dtype=np.uint64)
        scratch = np.empty((n_rows, n_words), dtype=np.uint64)
        for out_id in outs:
            h = hw[out_id]
            if h:
                np.bitwise_xor(vals[out_id][:h], golden[out_id], out=scratch[:h])
                np.bitwise_or(diff[:h], scratch[:h], out=diff[:h])
        evaluated = len(program) - int(stats["skipped"])
        _note_sparse(evaluated, n_total - evaluated, bool(stats["early_exit"]))
        return diff if identity else diff[inv]

    def run_outputs(
        self, words: np.ndarray, plan: OverridePlan, n_rows: int
    ) -> np.ndarray:
        if n_rows * words.shape[1] < SMALL_DETECT_CELLS:
            return super().run_outputs(words, plan, n_rows)
        vals, hw, golden, inv, identity = self._prefix_walk(words, plan, n_rows)
        n_words = words.shape[1]
        res = np.empty((len(self._output_ids), n_rows, n_words), dtype=np.uint64)
        for i, out_id in enumerate(self._output_ids):
            h = hw[out_id]
            if identity:
                res[i, :h] = vals[out_id][:h]
                res[i, h:] = golden[out_id]
            else:
                rows = vals[out_id]
                block = res[i]
                # Un-permute: original row r lives at sorted position
                # inv[r]; positions >= h are golden by construction.
                src_pos = inv
                taken = src_pos < h
                block[taken] = rows[src_pos[taken]]
                block[~taken] = golden[out_id]
        return res
