"""The interpreting oracle as an execution backend.

The original dict-keyed interpreter survives as
:class:`~repro.gates.simulate.ReferenceSimulator`; this backend brings
the same evaluation style -- unpacked uint8 bit arrays through the
:mod:`repro.gates.cells` truth functions, gate by gate -- under the
common :class:`~repro.gates.backends.base.Backend` protocol, extended
to multi-site fault groups.  It shares *no* kernel code with the
word-parallel backends: vectors are unpacked lane by lane, evaluated
through the cell library (not the compiled opcode lowering), and packed
back, so agreement with ``python_loop``/``fused`` is a genuine
differential check, not a reformulation.

Every lane of every word -- including the phantom lanes beyond a
sub-word universe -- carries the deterministic packed input bits, so
results are bit-identical to the packed backends on whole words.  Slow
by design; differential tests select it as ``backend="reference"`` on
small netlists.
"""

from __future__ import annotations

import numpy as np

from repro.gates.backends.base import Backend
from repro.gates.backends.plan import OverridePlan
from repro.gates.cells import cell_function
from repro.gates.compile import CompiledNetlist

_LANES = 64
_SHIFTS = np.arange(_LANES, dtype=np.uint64)


def _unpack(words: np.ndarray) -> np.ndarray:
    """uint64 word rows -> uint8 lane bits along a new last axis."""
    bits = (words[..., :, None] >> _SHIFTS) & np.uint64(1)
    return bits.reshape(*words.shape[:-1], words.shape[-1] * _LANES).astype(np.uint8)

def _pack(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_unpack` (bit count must be a word multiple)."""
    lanes = bits.astype(np.uint64).reshape(*bits.shape[:-1], -1, _LANES)
    return np.bitwise_or.reduce(lanes << _SHIFTS, axis=-1)


class ReferenceBackend(Backend):
    """Cell-library interpretation of every lane, packed at the edges."""

    name = "reference"

    def __init__(self, compiled: CompiledNetlist) -> None:
        super().__init__(compiled)
        # Compiled gate g is the g-th gate of the cached topological
        # order (compile_netlist lowers exactly this sequence).
        self._gates = compiled.source.topological_gates()
        offsets = compiled.operand_offsets
        self._operand_ids = [
            [int(i) for i in compiled.operands[offsets[g] : offsets[g + 1]]]
            for g in range(compiled.n_gates)
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def _apply8(entry, values: np.ndarray) -> None:
        """The uint8 form of :meth:`OverridePlan.apply`."""
        rows, consts = entry
        values[rows] = (consts != 0).astype(np.uint8)

    def run_words(self, words: np.ndarray) -> np.ndarray:
        vals = self.run_matrix(words, OverridePlan(self.compiled, []), 1)
        return vals[:, 0, :]

    def run_matrix(
        self, words: np.ndarray, plan: OverridePlan, n_rows: int
    ) -> np.ndarray:
        c = self.compiled
        n_words = words.shape[1]
        n_lanes = n_words * _LANES
        stems = plan.stem
        branches = plan.branch_by_gate
        bits = np.empty((c.n_nets, n_rows, n_lanes), dtype=np.uint8)
        in_bits = _unpack(words)
        for k, nid in enumerate(self._input_ids):
            bits[nid] = in_bits[k]
            entry = stems.get(nid)
            if entry is not None:
                self._apply8(entry, bits[nid])
        for g, gate in enumerate(self._gates):
            gate_branches = branches.get(g)
            pins = []
            for pin, nid in enumerate(self._operand_ids[g]):
                pv = bits[nid]
                if gate_branches is not None:
                    entry = gate_branches.get(pin)
                    if entry is not None:
                        pv = pv.copy()
                        self._apply8(entry, pv)
                pins.append(pv)
            out = cell_function(gate.cell_type)(pins)
            nid = int(c.gate_output_ids[g])
            bits[nid] = out
            entry = stems.get(nid)
            if entry is not None:
                self._apply8(entry, bits[nid])
        return _pack(bits)
