"""Pre-resolved stuck-at override plans shared by every execution backend.

An :class:`OverridePlan` is the backend-facing form of a fault batch:
row ``r`` of a fault-major evaluation simulates ``faults[r]`` -- a
single :class:`~repro.gates.faults.StuckAtFault` or a sequence applied
simultaneously (a multi-site fault group).  Stems are applied to a
net's value right after it is produced; branches override the value
seen by one specific gate input pin only.  The plan resolves every
site to compiled ids once, so backends consume plain
``{net id -> (row list, constant column)}`` maps with no name lookups
in their hot loops.

The plan also records ``row_levels`` -- per row, the topological level
at which the row can first diverge from the fault-free run: the
shallowest *reading gate* over the row's fault sites (``depth + 1``
for rows with no sites, i.e. ride-along golden rows).  This is purely
a scheduling hint -- the ``fused`` backend sorts rows by it so each
gate evaluates only a tainted row prefix
(:mod:`repro.gates.backends.fused`); correctness never depends on it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.gates.compile import CompiledNetlist
from repro.gates.faults import StuckAtFault

ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: One matrix row simulates either a single fault or a *group* of faults
#: applied together (e.g. the same cell-level fault replicated into the
#: nominal and checking copies of a functional unit).
FaultGroup = Union[StuckAtFault, Sequence[StuckAtFault]]


def _stuck_column(values: List[int]) -> np.ndarray:
    """Per-row stuck constants as an ``(n, 1)`` uint64 column."""
    col = np.empty((len(values), 1), dtype=np.uint64)
    for i, v in enumerate(values):
        col[i, 0] = ALL_ONES if v else 0
    return col


class OverridePlan:
    """Pre-resolved stuck-at overrides for one fault-matrix evaluation.

    Row indices stay plain lists -- they feed NumPy fancy indexing
    directly and building ndarray objects per site costs more than it
    saves at these sizes.  ``stem`` maps a net id to ``(rows, column)``;
    ``branch_by_gate`` maps a compiled gate index to per-pin entries of
    the same shape.
    """

    def __init__(self, compiled: CompiledNetlist, faults: Sequence[FaultGroup]) -> None:
        stem: Dict[int, Tuple[List[int], List[int]]] = {}
        branch: Dict[int, Dict[int, Tuple[List[int], List[int]]]] = {}
        self.n_rows = len(faults)
        untainted = compiled.depth + 1
        row_levels = np.full(self.n_rows, untainted, dtype=np.int64)
        for row, entry_faults in enumerate(faults):
            group = (
                (entry_faults,)
                if isinstance(entry_faults, StuckAtFault)
                else tuple(entry_faults)
            )
            for fault in group:
                site_level = self._add(compiled, stem, branch, row, fault)
                if site_level < row_levels[row]:
                    row_levels[row] = site_level
        self.row_levels = row_levels
        # Each site becomes one fancy assignment: rows plus a per-row
        # constant column (0 or all-ones) broadcast across the words.
        self.stem = {
            nid: (rows, _stuck_column(values)) for nid, (rows, values) in stem.items()
        }
        self.branch_by_gate = {
            gate: {
                pin: (rows, _stuck_column(values))
                for pin, (rows, values) in pins.items()
            }
            for gate, pins in branch.items()
        }

    @staticmethod
    def _add(
        compiled: CompiledNetlist,
        stem: Dict[int, Tuple[List[int], List[int]]],
        branch: Dict[int, Dict[int, Tuple[List[int], List[int]]]],
        row: int,
        fault: StuckAtFault,
    ) -> int:
        """Register one site; returns the site's first-divergence level."""
        if fault.site.is_stem:
            nid = compiled.net_id(fault.site.net)
            entry = stem.get(nid)
            if entry is None:
                entry = stem[nid] = ([], [])
            entry[0].append(row)
            entry[1].append(fault.value)
            # A stem becomes observable at its shallowest reader (or,
            # for read-free output nets, right where it is produced).
            lo, hi = compiled.fanout_offsets[nid], compiled.fanout_offsets[nid + 1]
            if hi > lo:
                return int(compiled.gate_levels[compiled.fanout_gates[lo:hi]].min())
            return int(compiled.net_levels[nid])
        gate_name, pin = fault.site.branch
        gate, pin = compiled.pin_id(gate_name, pin)
        pins = branch.setdefault(gate, {})
        entry = pins.get(pin)
        if entry is None:
            entry = pins[pin] = ([], [])
        entry[0].append(row)
        entry[1].append(fault.value)
        return int(compiled.gate_levels[gate])

    @staticmethod
    def apply(entry: Tuple[List[int], np.ndarray], values: np.ndarray) -> None:
        rows, consts = entry
        values[rows] = consts
