"""Observability end to end: trace a sharded campaign, then report on it.

The walk-through:

1. run the RCA-8 stuck-at campaign untraced -- the reference result;
2. point ``REPRO_TRACE`` at a JSON-lines file and re-run the same
   campaign 2-way sharded through a result store -- every span
   (``sharded_campaign`` -> per-worker ``campaign``), lifecycle event
   (shard submitted/started/completed/merged, checkpoint written) and
   tuning decision lands in the trace, and kernel profiling switches on;
3. assert the traced run is **bit-identical** to the untraced one --
   telemetry is passive by contract (`benchmarks/bench_obs.py` gates
   its overhead under 5%);
4. rebuild the campaign story from the trace alone with
   :func:`repro.obs.report.summarize` -- per-shard durations, straggler
   ratio, shards per worker pid -- and overlay the live registry for
   store hit rate and per-backend kernel time, exactly what
   ``python -m repro.obs.report trace.jsonl --metrics dump.jsonl``
   renders post-hoc.

Run:  PYTHONPATH=src python examples/traced_campaign.py
"""

import os
import sys
import tempfile

import numpy as np

from repro.faults.injector import run_sharded_stuck_at_campaign
from repro.gates import builders
from repro.obs import metrics, read_trace, registry, trace
from repro.obs.report import kernel_summary, render, store_summary, summarize
from repro.store import ResultStore

WIDTH = 8
WORKERS = 2


def main() -> None:
    netlist = builders.ripple_carry_adder(WIDTH)

    # 1. Untraced reference.
    os.environ.pop(trace.TRACE_ENV, None)
    reference = run_sharded_stuck_at_campaign(netlist, workers=WORKERS, store=False)

    # 2. The same campaign, fully instrumented.
    trace_path = os.path.join(
        tempfile.mkdtemp(prefix="repro-trace-"), "trace.jsonl"
    )
    store = ResultStore(tempfile.mkdtemp(prefix="repro-store-"))
    os.environ[trace.TRACE_ENV] = trace_path
    try:
        traced = run_sharded_stuck_at_campaign(
            netlist, workers=WORKERS, store=store
        )
    finally:
        os.environ.pop(trace.TRACE_ENV, None)

    # 3. Telemetry is passive: results are bit-identical.
    assert np.array_equal(
        np.asarray(traced.detected), np.asarray(reference.detected)
    )
    assert np.array_equal(
        np.asarray(traced.first_detected), np.asarray(reference.first_detected)
    )
    assert traced.n_simulated_runs == reference.n_simulated_runs
    print(f"traced campaign bit-identical to untraced ({trace_path})")

    # 4. Reconstruct the campaign from the trace, then overlay the live
    # registry (post-hoc the final metrics record and a REPRO_METRICS
    # dump serve the same role via ``--metrics``).
    records = read_trace(trace_path)
    assert any(r.get("name") == "sharded_campaign" for r in records)
    summary = summarize(records)
    snapshot = registry().snapshot()
    summary["store"] = store_summary(snapshot)
    summary["kernels"] = kernel_summary(snapshot)

    shards = summary["shards"]
    assert shards["submitted"] == WORKERS and shards["balanced"]
    assert summary["store"]["puts"] >= WORKERS  # shard checkpoints landed
    if metrics.METRICS_ENV not in os.environ:
        # Kernel profiling rides the env gates: off again once unset.
        assert metrics.kernel_profiling_enabled() is False

    print()
    render(summary, sys.stdout)


if __name__ == "__main__":
    main()
