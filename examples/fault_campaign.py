"""Fault-injection campaign over a checked software workload.

Exercises the full stack: a biquad IIR section is SCK-enriched,
compiled to the monoprocessor VM, and bombarded with the 32-fault
full-adder universe injected into each functional unit class --
including transient and intermittent faults, which the paper's fault
model explicitly covers.

Run:  python examples/fault_campaign.py
"""

from repro.apps.iir import BiquadSpec, biquad_graph
from repro.arch.alu import FaultableALU
from repro.arch.cell import effective_faulty_cells
from repro.codesign.sck_transform import enrich_with_sck
from repro.faults.model import intermittent, permanent, transient
from repro.vm.compiler import ERROR_FLAG_ADDR, compile_dfg
from repro.vm.machine import Machine
from repro.vm.optimizer import optimize

SAMPLES = 24


def build_program():
    graph = enrich_with_sck(biquad_graph(BiquadSpec()))
    program, memory_map = compile_dfg(graph, SAMPLES)
    return optimize(program), memory_map, graph


def build_memory(memory_map, graph):
    # Drive x0 with a ramp; the delayed taps receive shifted copies and
    # the feedback inputs zeros (open-loop campaign: deterministic).
    xs = [((3 * k) % 17) - 8 for k in range(SAMPLES)]
    memory = {}
    streams = {
        "x0": xs,
        "x1": [0] + xs[:-1],
        "x2": [0, 0] + xs[:-2],
        "yd1": [0] * SAMPLES,
        "yd2": [0] * SAMPLES,
    }
    for name, stream in streams.items():
        base = memory_map.stream_for_input(name)
        for k, value in enumerate(stream):
            memory[base + k] = value
    return memory


def campaign(program, memory_map, graph, unit, schedule_name, schedule_active):
    """Run every effective faulty cell through one unit/schedule combo."""
    memory = build_memory(memory_map, graph)
    out_base = memory_map.stream_for_output("y")
    golden = Machine(16).run(program, dict(memory))
    golden_out = [golden.memory.get(out_base + k, 0) for k in range(SAMPLES)]

    wrong = detected = escaped = 0
    for cell in effective_faulty_cells():
        alu = FaultableALU(16)
        if schedule_active:
            alu.inject_fault(unit, cell, position=1, column=0)
        try:
            run = Machine(16, alu=alu).run(program, dict(memory))
        except Exception:
            detected += 1
            wrong += 1
            continue
        out = [run.memory.get(out_base + k, 0) for k in range(SAMPLES)]
        if out != golden_out:
            wrong += 1
            if run.memory.get(ERROR_FLAG_ADDR, 0):
                detected += 1
            else:
                escaped += 1
    return wrong, detected, escaped


def main() -> None:
    program, memory_map, graph = build_program()
    print(
        f"SCK-enriched biquad: {len(program.instructions)} instructions, "
        f"{SAMPLES} samples per run\n"
    )
    print(f"{'unit':12s} {'corrupted':>9s} {'detected':>9s} {'escaped':>8s}")
    for unit in ("adder", "multiplier", "divider"):
        wrong, detected, escaped = campaign(
            program, memory_map, graph, unit, "permanent", True
        )
        print(f"{unit:12s} {wrong:9d} {detected:9d} {escaped:8d}")

    # Duration classes: the schedules gate when a fault is live.  A
    # transient hit inside the run is detected by the per-sample checks;
    # one scheduled after the workload never manifests.
    print("\nduration classes (adder cell 1, first faulty cell):")
    for name, schedule in (
        ("permanent", permanent()),
        ("transient@op5", transient(at=5, duration=3)),
        ("intermittent p=0.3", intermittent(0.3, seed=42)),
        ("transient@op10^9 (never fires)", transient(at=10**9)),
    ):
        live = any(schedule.active_at(i) for i in range(2000))
        wrong, detected, escaped = campaign(
            program, memory_map, graph, "adder", name, live
        )
        print(
            f"  {name:32s} live={live!s:5s} corrupted={wrong:2d} "
            f"detected={detected:2d} escaped={escaped}"
        )


if __name__ == "__main__":
    main()
