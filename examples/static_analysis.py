"""Static analysis end to end: lint, cones, collapsing, SCOAP.

The walk-through:

1. lint a deliberately broken netlist (combinational loop + floating
   net) and see each problem land on its named rule, then lint a
   shipped builder clean;
2. partition an 8-bit ripple-carry adder into support cones and read
   off which inputs each sum bit actually depends on;
3. run the exhaustive stuck-at campaign three ways -- uncollapsed,
   equivalence- and dominance-collapsed -- and check the dominance run
   simulates ~26% fewer faults while every detection verdict stays
   bit-identical;
4. rank the hardest-to-test faults by SCOAP effort and use that order
   to steer ATPG.

Run:  PYTHONPATH=src python examples/static_analysis.py
"""

import numpy as np

from repro.analysis.collapse import collapse_faults
from repro.analysis.cones import analyze_cones
from repro.analysis.lint import lint_netlist
from repro.analysis.testability import hardest_faults
from repro.gates.builders import ripple_carry_adder
from repro.gates.cells import CellType
from repro.gates.engine import engine_for
from repro.gates.netlist import Netlist
from repro.tpg.generate import generate_tests

WIDTH = 8


def main() -> None:
    # 1. Lint: a broken netlist reports every problem in one pass.
    broken = Netlist("broken")
    a = broken.add_input("a")
    broken.add_gate(CellType.AND, [a, "loop_y"], "loop_x", name="g1")
    broken.add_gate(CellType.OR, [a, "loop_x"], "loop_y", name="g2")
    broken.add_gate(CellType.NOT, ["ghost"], "out", name="g3")
    broken.mark_output("out")
    report = lint_netlist(broken)
    print(report.render())
    assert not report.ok
    assert report.by_rule("combinational-loop") and report.by_rule("undriven-net")

    netlist = ripple_carry_adder(WIDTH)
    assert lint_netlist(netlist).ok
    print(f"\n{netlist.name}: lints clean")

    # 2. Support cones: which inputs can affect which outputs.
    cones = analyze_cones(netlist)
    print(f"support of fa3_s: {', '.join(cones.support_of('fa3_s'))}")
    print(f"a7 reaches: {', '.join(cones.outputs_reached('a7'))}")
    print(f"output partitions: {len(cones.output_partitions())}")

    # 3. Dominance collapsing: fewer simulated faults, identical verdicts.
    cmap = collapse_faults(netlist, mode="dominance")
    print(f"\n{cmap.summary()}")
    engine = engine_for(netlist)
    flat = engine.campaign(collapse=False, fault_dropping=False)
    dom = engine.campaign(collapse="dominance", fault_dropping=False)
    assert np.array_equal(flat.detected, dom.detected)
    print(
        f"exhaustive campaign: {flat.n_simulated_runs} flat runs vs "
        f"{dom.n_simulated_runs} dominance runs, detection bit-identical"
    )

    # 4. SCOAP: the structurally hardest faults, and ATPG steered by them.
    print("\nhardest faults by SCOAP effort:")
    for fault, effort in hardest_faults(netlist, limit=3):
        print(f"  effort {effort:>3}  {fault.describe()}")
    result = generate_tests(
        netlist, collapse="dominance", order="testability", store=False
    )
    print(result.summary())
    assert result.dictionary.coverage == 1.0


if __name__ == "__main__":
    main()
