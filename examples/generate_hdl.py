"""Regenerate the paper's figures and HDL artefacts.

Writes to examples/generated/:

* figure1_sck_interface.cpp   -- the SCK class interface (Figure 1)
* figure2_operator_plus.cpp   -- the self-checking operator+ (Figure 2)
* figure3_flow.txt / .dot     -- the reliable co-design flow (Figure 3)
* sck_library.cpp             -- the full checker library as C++
* test_architecture.vhd       -- the Section 4.1 fault-injection bench
* fir_sck_datapath.vhd        -- bound self-checking FIR datapath RTL
* rca4.vhd / rca4.v           -- a gate-level adder in VHDL and Verilog

Run:  python examples/generate_hdl.py
"""

from pathlib import Path

from repro.apps.fir import fir_graph
from repro.codesign.allocation import bind
from repro.codesign.scheduling import asap_schedule
from repro.codesign.sck_transform import enrich_with_sck
from repro.gates.builders import ripple_carry_adder
from repro.gates.emit import to_verilog, to_vhdl
from repro.hdlgen.datapath import emit_datapath_rtl
from repro.hdlgen.flow_diagram import emit_flow_ascii, emit_flow_dot
from repro.hdlgen.sck_class import (
    emit_sck_class,
    emit_sck_interface,
    emit_sck_operator,
)
from repro.hdlgen.testarch import emit_test_architecture


def main() -> None:
    out_dir = Path(__file__).parent / "generated"
    out_dir.mkdir(exist_ok=True)

    artefacts = {
        "figure1_sck_interface.cpp": emit_sck_interface(("add",)),
        "figure2_operator_plus.cpp": emit_sck_operator("add", "tech1"),
        "figure3_flow.txt": emit_flow_ascii(),
        "figure3_flow.dot": emit_flow_dot(),
        "sck_library.cpp": emit_sck_class(
            operators=("add", "sub", "mul", "div"),
            techniques={"add": "both", "sub": "both", "mul": "tech1", "div": "tech2"},
        ),
        "test_architecture.vhd": emit_test_architecture(width=4),
        "rca4.vhd": to_vhdl(ripple_carry_adder(4, name="rca4")),
        "rca4.v": to_verilog(ripple_carry_adder(4, name="rca4")),
    }

    fir = enrich_with_sck(fir_graph())
    allocation = bind(asap_schedule(fir))
    artefacts["fir_sck_datapath.vhd"] = emit_datapath_rtl(allocation)

    for name, text in artefacts.items():
        path = out_dir / name
        path.write_text(text)
        print(f"wrote {path} ({len(text.splitlines())} lines)")

    print("\n--- Figure 2 preview ---")
    print(artefacts["figure2_operator_plus.cpp"])


if __name__ == "__main__":
    main()
