"""Worst-case fault-coverage study (Tables 1 and 2).

Regenerates the paper's coverage experiments: the overloaded operator's
checking operation runs on the same faulty unit as the nominal
operation, and we count how often error compensation defeats it.

Run:  python examples/coverage_study.py          # quick (seconds)
      python examples/coverage_study.py --full   # adds 8/16-bit rows
"""

import sys

from repro.coverage.engine import evaluate_adder, evaluate_operator
from repro.coverage.report import (
    render_table1,
    render_table2,
    render_two_bit_analysis,
)


def main(full: bool = False) -> None:
    widths = [1, 2, 3, 4] + ([8, 16] if full else [])
    results = {
        n: evaluate_adder(n, samples=2048)
        for n in widths
    }
    print(render_table2(widths=widths, results=results))
    print()
    print(render_two_bit_analysis(stats=results[2]))
    print()

    table1 = {
        op: evaluate_operator(op, width=6, samples=1024, exhaustive_limit=1 << 12)
        for op in ("add", "sub", "mul", "div")
    }
    print(render_table1(width=6, results=table1))
    print()

    # The headline worst-case numbers the paper quotes in prose.
    both = results[2]["both"]
    print(
        f"2-bit adder, both techniques: per-fault-case coverage spans "
        f"[{100 * both.per_case_min:.2f}%, {100 * both.per_case_max:.2f}%] "
        f"(paper: [81.90%, 99.87%] across strategies)"
    )


if __name__ == "__main__":
    main(full="--full" in sys.argv[1:])
