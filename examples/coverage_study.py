"""Worst-case fault-coverage study (Tables 1 and 2).

Regenerates the paper's coverage experiments: the overloaded operator's
checking operation runs on the same faulty unit as the nominal
operation, and we count how often error compensation defeats it.

Since PR 2 every Table 2 row is *exact*: small operand spaces stream
through the batched gate-level engine, wide widths (n = 8, 16) go
through the carry-state transfer matrix -- where the paper itself had
to fall back to random sampling.  The ``mode`` column states the
provenance of every cell; pass ``--sampled`` to cross-check the exact
numbers against the legacy Monte-Carlo estimate.

Run:  python examples/coverage_study.py            # full Table 2, exact
      python examples/coverage_study.py --sampled  # add the Monte-Carlo cross-check
"""

import sys

from repro.coverage.engine import evaluate_adder, evaluate_operator
from repro.coverage.report import (
    TABLE2_WIDTHS,
    render_table1,
    render_table2,
    render_two_bit_analysis,
)


def main(sampled: bool = False) -> None:
    widths = list(TABLE2_WIDTHS)
    results = {n: evaluate_adder(n) for n in widths}
    print(render_table2(widths=widths, results=results))
    print()
    print(render_two_bit_analysis(stats=results[2]))
    print()

    table1 = {
        op: evaluate_operator(op, width=6, exhaustive_limit=1 << 12, samples=1024)
        for op in ("add", "sub", "mul", "div")
    }
    print(render_table1(width=6, results=table1))
    print()

    # The headline worst-case numbers the paper quotes in prose.
    both = results[2]["both"]
    print(
        f"2-bit adder, both techniques: per-fault-case coverage spans "
        f"[{100 * both.per_case_min:.2f}%, {100 * both.per_case_max:.2f}%] "
        f"(paper: [81.90%, 99.87%] across strategies)"
    )

    if sampled:
        print()
        print("Monte-Carlo cross-check (seeded, 4096 samples/case):")
        for n in (8, 16):
            est = evaluate_adder(n, samples=4096, method="sampled")["both"]
            exact = results[n]["both"]
            print(
                f"  n={n:2d}: exact {exact.coverage_percent:.3f}%  "
                f"sampled {est.coverage_percent:.3f}%  "
                f"(delta {abs(exact.coverage_percent - est.coverage_percent):.3f} pts)"
            )


if __name__ == "__main__":
    main(sampled="--sampled" in sys.argv[1:])
