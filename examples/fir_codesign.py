"""The paper's FIR case study through the reliable co-design flow.

Reproduces Table 3: three specification variants (plain, SCK-enriched,
embedded checks), each synthesised to a min-area and a min-latency
hardware point and compiled to the monoprocessor VM.

Run:  python examples/fir_codesign.py
"""

from repro.apps.fir import FirSpec, fir_graph, fir_reference, fir_sck
from repro.codesign.flow import ReliableCoDesignFlow
from repro.codesign.report import render_table3
from repro.core import SCKContext


def main() -> None:
    spec = FirSpec()
    print(f"FIR: {spec.taps} taps, coefficients {tuple(spec.coefficients)}\n")

    # Functional check first: the SCK implementation matches the golden
    # reference and stays error-free on healthy hardware.
    samples = [12, -7, 33, 5, 0, -21, 8, 14, -3, 9]
    with SCKContext(width=16):
        outputs = fir_sck(samples, spec)
    assert [o.value for o in outputs] == fir_reference(samples, spec)
    assert not any(o.error for o in outputs)
    print(f"y[0..9] = {[o.value for o in outputs]}  (all error bits clear)\n")

    # The full co-design evaluation (hardware + software, 3 variants).
    flow = ReliableCoDesignFlow(fir_graph(spec), samples=20_000_000)
    results = flow.run()
    print(render_table3(results=results))

    print("\nPer-variant detail:")
    for variant, result in results.items():
        for hw in (result.hw_min_area, result.hw_min_latency):
            print(f"  {hw.describe()}")
        print(f"  {variant}/software: {result.software.describe()}")


if __name__ == "__main__":
    main()
