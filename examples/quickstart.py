"""Quickstart: self-checking integers in five minutes.

Demonstrates the paper's core idea: swap plain integers for the SCK
type and every arithmetic operation transparently verifies itself with
a hidden inverse operation, accumulating an error bit.

Run:  python examples/quickstart.py
"""

from repro.arch.cell import effective_faulty_cells
from repro.core import SCK, SCKContext, HardwareBackend, default_library


def main() -> None:
    # ------------------------------------------------------------------
    # 1. SCK values behave like fixed-width ints, but self-check.
    # ------------------------------------------------------------------
    with SCKContext(width=16) as ctx:
        a = SCK(1200)
        b = SCK(-34)
        c = (a + b) * SCK(3) - SCK(10)
        q = c / SCK(7)
        print(f"(1200 - 34) * 3 - 10 = {c.value}, /7 = {q.value}")
        print(f"error bits: c.E={c.error}, q.E={q.error}")
        print(f"context: {ctx.describe()}")
        print()

    # ------------------------------------------------------------------
    # 2. Inject a hardware fault into the adder: the same computation
    #    now raises the error bit whenever the result is corrupted.
    # ------------------------------------------------------------------
    backend = HardwareBackend(16)
    faulty_cell = effective_faulty_cells()[3]
    backend.alu.inject_fault("adder", faulty_cell, position=5)
    print(f"injected: {faulty_cell.fault.describe()} at adder cell 5")

    with SCKContext(width=16, backend=backend) as ctx:
        detected = silent = clean = 0
        for x in range(-500, 500, 7):
            result = SCK(x) + SCK(777)
            if result.error:
                detected += 1
            elif result.value != x + 777:
                silent += 1
            else:
                clean += 1
        print(
            f"143 additions on the faulty unit: {clean} correct, "
            f"{detected} flagged, {silent} silent corruptions"
        )
        print()

    # ------------------------------------------------------------------
    # 3. The reliability library: pick a technique by trade-off.
    # ------------------------------------------------------------------
    library = default_library()
    for operator in ("add", "sub", "mul", "div"):
        choice = library.select(operator, min_coverage=96.0)
        print(f"cheapest {operator} checker with >=96% coverage: {choice.describe()}")

    # Use the stronger 'both' technique for additions only.
    with SCKContext(width=16, techniques={"add": "both"}) as ctx:
        SCK(5) + SCK(6)
        print(f"\nwith add->both: {ctx.checks} check(s) logged: {ctx.log[0].describe()}")


if __name__ == "__main__":
    main()
