"""Memoised campaigns: the content-addressed result store end to end.

The walk-through:

1. run the n = 4 adder coverage column cold through a store and again
   warm -- the second run is served entirely from cache, bit-identical;
2. re-run the same campaign under a *different* shard grid -- the final
   artifact key excludes worker counts, so it is a pure hit, not a
   recompute;
3. simulate a crash: kill a 4-way sharded campaign after 2 shards via
   the test hook, then resume -- the resumed run loads the 2 finished
   checkpoints, executes only the 2 missing shards
   (``last_checkpoint_report()`` proves it), and merges byte-identically
   with an uninterrupted reference run.

Everything is opt-in: without ``store=`` (or ``REPRO_STORE=1`` in the
environment) the stack never touches the filesystem.

Run:  PYTHONPATH=src python examples/cached_campaigns.py
"""

import tempfile
import time

import numpy as np

from repro import ResultStore
from repro.coverage.engine import evaluate_adder
from repro.faults.injector import run_sharded_stuck_at_campaign
from repro.gates import builders
from repro.store import last_checkpoint_report, shard_hook

WIDTH = 4


def main() -> None:
    store = ResultStore(tempfile.mkdtemp(prefix="repro-store-"))

    # 1. Cold vs warm: bit-identical, served from cache.
    t0 = time.perf_counter()
    cold = evaluate_adder(WIDTH, store=store)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = evaluate_adder(WIDTH, store=store)
    warm_s = time.perf_counter() - t0
    assert warm == cold
    print(
        f"adder n={WIDTH} coverage: cold {cold_s * 1e3:.1f} ms, "
        f"warm {warm_s * 1e3:.2f} ms "
        f"({store.stats.hits} hits / {store.stats.puts} entries)"
    )

    # 2. The final key is shard-free: a different grid is a pure hit.
    netlist = builders.ripple_carry_adder(WIDTH)
    four_way = run_sharded_stuck_at_campaign(netlist, workers=4, store=store)
    puts_before = store.stats.puts
    two_way = run_sharded_stuck_at_campaign(netlist, workers=2, store=store)
    assert store.stats.puts == puts_before  # nothing recomputed
    assert np.array_equal(
        np.asarray(four_way.detected), np.asarray(two_way.detected)
    )
    print("re-sharded campaign: pure hit, detection words identical")

    # 3. Crash and resume.
    reference = run_sharded_stuck_at_campaign(netlist, workers=4, store=False)
    crash_store = ResultStore(tempfile.mkdtemp(prefix="repro-store-"))
    completed = {"n": 0}

    def crash_after_two(index):
        if completed["n"] >= 2:
            raise RuntimeError("simulated crash")
        completed["n"] += 1

    try:
        with shard_hook(crash_after_two):
            run_sharded_stuck_at_campaign(netlist, workers=4, store=crash_store)
    except RuntimeError:
        pass
    print(f"killed after {len(crash_store)} shard checkpoints")

    resumed = run_sharded_stuck_at_campaign(netlist, workers=4, store=crash_store)
    report = last_checkpoint_report()
    assert report.loaded == 2 and report.executed == 2
    assert np.array_equal(
        np.asarray(resumed.detected), np.asarray(reference.detected)
    )
    assert resumed.n_simulated_runs == reference.n_simulated_runs
    print(
        f"resumed: loaded {report.loaded}, re-executed {report.executed} "
        f"of {report.total} shards -- merge byte-identical"
    )


if __name__ == "__main__":
    main()
