-- Self-checking datapath for fir_sck
-- schedule: 6 control steps; binding:
--   alu[0] shared by 3 ops (a1, a2, a3): input muxes inferred
--   checker[0] shared by 5 ops (a1_chk_t1, a2_chk_t1, a3_chk_t1, p0_chk_t1m, p0_chk_t1s): input muxes inferred
--   checker[1] shared by 2 ops (p1_chk_t1m, p1_chk_t1s): input muxes inferred
--   checker[2] shared by 2 ops (p2_chk_t1m, p2_chk_t1s): input muxes inferred
--   checker[3] shared by 2 ops (p3_chk_t1m, p3_chk_t1s): input muxes inferred
--   io[0] shared by 2 ops (x0, y): input muxes inferred
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity fir_sck_dp is
  port (
    clk, rst : in std_logic;
    x0_in : in signed(15 downto 0); x1_in : in signed(15 downto 0); x2_in : in signed(15 downto 0); x3_in : in signed(15 downto 0);
    y_out : out signed(15 downto 0);
    error_flag : out std_logic
  );
end entity fir_sck_dp;

architecture rtl of fir_sck_dp is
  signal state : integer range 0 to 6;
  signal x0 : signed(15 downto 0);
  signal x1 : signed(15 downto 0);
  signal x2 : signed(15 downto 0);
  signal x3 : signed(15 downto 0);
  signal p0 : signed(15 downto 0);
  signal p1 : signed(15 downto 0);
  signal p2 : signed(15 downto 0);
  signal p3 : signed(15 downto 0);
  signal a1 : signed(15 downto 0);
  signal a2 : signed(15 downto 0);
  signal a3 : signed(15 downto 0);
  signal p0_chk_t1m : signed(15 downto 0);
  signal p0_chk_t1s : signed(15 downto 0);
  signal p0_cmp_t1 : std_logic;
  signal p1_chk_t1m : signed(15 downto 0);
  signal p1_chk_t1s : signed(15 downto 0);
  signal p1_cmp_t1 : std_logic;
  signal p2_chk_t1m : signed(15 downto 0);
  signal p2_chk_t1s : signed(15 downto 0);
  signal p2_cmp_t1 : std_logic;
  signal p3_chk_t1m : signed(15 downto 0);
  signal p3_chk_t1s : signed(15 downto 0);
  signal p3_cmp_t1 : std_logic;
  signal a1_chk_t1 : signed(15 downto 0);
  signal a1_cmp_t1 : std_logic;
  signal a2_chk_t1 : signed(15 downto 0);
  signal a2_cmp_t1 : std_logic;
  signal a3_chk_t1 : signed(15 downto 0);
  signal a3_cmp_t1 : std_logic;
  signal sck_or0_0 : std_logic;
  signal sck_or0_1 : std_logic;
  signal sck_or0_2 : std_logic;
  signal sck_or1_0 : std_logic;
  signal sck_or1_1 : std_logic;
  signal sck_or2_0 : std_logic;
  signal error_latch : std_logic := '0';
begin
  process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        state <= 0;
        error_latch <= '0';
      else
      case state is
        when 0 =>
          x0 <= x0_in;
          x1 <= x1_in;
          x2 <= x2_in;
          x3 <= x3_in;
        when 1 =>
          p0 <= resize(to_signed(3, 16) * x0, 16);  -- on mult[0]
          p1 <= resize(to_signed(7, 16) * x1, 16);  -- on mult[1]
          p2 <= resize(to_signed(7, 16) * x2, 16);  -- on mult[2]
          p3 <= resize(to_signed(3, 16) * x3, 16);  -- on mult[3]
          p0_chk_t1m <= resize(to_signed(-3, 16) * x0, 16);  -- on checker[0]
          p1_chk_t1m <= resize(to_signed(-7, 16) * x1, 16);  -- on checker[1]
          p2_chk_t1m <= resize(to_signed(-7, 16) * x2, 16);  -- on checker[2]
          p3_chk_t1m <= resize(to_signed(-3, 16) * x3, 16);  -- on checker[3]
        when 2 =>
          a1 <= p0 + p1;  -- on alu[0]
          p0_chk_t1s <= p0 + p0_chk_t1m;  -- on checker[0]
          p1_chk_t1s <= p1 + p1_chk_t1m;  -- on checker[1]
          p2_chk_t1s <= p2 + p2_chk_t1m;  -- on checker[2]
          p3_chk_t1s <= p3 + p3_chk_t1m;  -- on checker[3]
        when 3 =>
          a2 <= a1 + p2;  -- on alu[0]
          p0_cmp_t1 <= '1' when p0_chk_t1s /= to_signed(0, 16) else '0';
          p1_cmp_t1 <= '1' when p1_chk_t1s /= to_signed(0, 16) else '0';
          p2_cmp_t1 <= '1' when p2_chk_t1s /= to_signed(0, 16) else '0';
          p3_cmp_t1 <= '1' when p3_chk_t1s /= to_signed(0, 16) else '0';
          a1_chk_t1 <= a1 - p0;  -- on checker[0]
          sck_or0_0 <= p0_cmp_t1 or p1_cmp_t1;
          sck_or0_1 <= p2_cmp_t1 or p3_cmp_t1;
          sck_or1_0 <= sck_or0_0 or sck_or0_1;
        when 4 =>
          a3 <= a2 + p3;  -- on alu[0]
          a1_cmp_t1 <= '1' when a1_chk_t1 /= p1 else '0';
          a2_chk_t1 <= a2 - a1;  -- on checker[0]
        when 5 =>
          y_out <= a3;
          a2_cmp_t1 <= '1' when a2_chk_t1 /= p2 else '0';
          a3_chk_t1 <= a3 - a2;  -- on checker[0]
          sck_or0_2 <= a1_cmp_t1 or a2_cmp_t1;
        when others => null;
      end case;
      if state = 6 then state <= 0; else state <= state + 1; end if;
      end if;
    end if;
  end process;
  error_flag <= error_latch;
end architecture rtl;
