library ieee;
use ieee.std_logic_1164.all;

entity rca4 is
  port (
    a0 : in  std_logic;
    a1 : in  std_logic;
    a2 : in  std_logic;
    a3 : in  std_logic;
    b0 : in  std_logic;
    b1 : in  std_logic;
    b2 : in  std_logic;
    b3 : in  std_logic;
    cin : in  std_logic;
    fa0_s : out std_logic;
    fa1_s : out std_logic;
    fa2_s : out std_logic;
    fa3_s : out std_logic;
    fa3_cout : out std_logic
  );
end entity rca4;

architecture structural of rca4 is
  signal fa0_p, fa0_g1, fa1_p, fa1_g1, fa2_p, fa2_g1, fa3_p, fa3_g1, fa0_g2, fa0_cout, fa1_g2, fa1_cout, fa2_g2, fa2_cout, fa3_g2 : std_logic;
begin
  fa0_p <= a0 xor b0;  -- fa0_x1
  fa0_g1 <= a0 and b0;  -- fa0_a1
  fa1_p <= a1 xor b1;  -- fa1_x1
  fa1_g1 <= a1 and b1;  -- fa1_a1
  fa2_p <= a2 xor b2;  -- fa2_x1
  fa2_g1 <= a2 and b2;  -- fa2_a1
  fa3_p <= a3 xor b3;  -- fa3_x1
  fa3_g1 <= a3 and b3;  -- fa3_a1
  fa0_s <= fa0_p xor cin;  -- fa0_x2
  fa0_g2 <= fa0_p and cin;  -- fa0_a2
  fa0_cout <= fa0_g1 or fa0_g2;  -- fa0_o1
  fa1_s <= fa1_p xor fa0_cout;  -- fa1_x2
  fa1_g2 <= fa1_p and fa0_cout;  -- fa1_a2
  fa1_cout <= fa1_g1 or fa1_g2;  -- fa1_o1
  fa2_s <= fa2_p xor fa1_cout;  -- fa2_x2
  fa2_g2 <= fa2_p and fa1_cout;  -- fa2_a2
  fa2_cout <= fa2_g1 or fa2_g2;  -- fa2_o1
  fa3_s <= fa3_p xor fa2_cout;  -- fa3_x2
  fa3_g2 <= fa3_p and fa2_cout;  -- fa3_a2
  fa3_cout <= fa3_g1 or fa3_g2;  -- fa3_o1
end architecture structural;
