template <class TYPE>
class SCK
{
  private:
    TYPE ID;    // internal data
    bool E;     // error bit

  public:
    SCK() {}                       // empty constructor (synthesis)
    SCK(TYPE v) : ID(v), E(false) {}

    TYPE GetID() const   { return ID; }
    bool GetError() const { return E; }

    SCK<TYPE> &operator=(const SCK<TYPE> &src);
    SCK<TYPE> operator+(const SCK<TYPE> &op2) const;
};
