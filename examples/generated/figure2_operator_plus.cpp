template <class TYPE>
SCK<TYPE> SCK<TYPE>::operator+(const SCK<TYPE> &op2) const
{
    const SCK<TYPE> &op1 = *this;
    SCK<TYPE> ris;
    bool err = op1.E || op2.E;        // error propagation
    ris.ID = op1.ID + op2.ID;  // nominal operation
    TYPE chk = ris.ID - op1.ID;   // hidden inverse operation
    err = err || (chk != op2.ID);
    ris.E = err;
    return ris;
}
