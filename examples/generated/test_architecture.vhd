-- Test architecture for the paired operations f (add) and its dual
-- (subtract = f with g(op) = one's complement and carry-in = 1), both
-- executed on the same (faulty) unit, per paper Section 4.1.
--
-- Fault universe of the single full-adder cell (xor3_majority):
--    0: SA0 @ a (stem)
--    1: SA1 @ a (stem)
--    2: SA0 @ a -> x3.pin0 (branch)
--    3: SA1 @ a -> x3.pin0 (branch)
--    4: SA0 @ a -> a1.pin0 (branch)
--    5: SA1 @ a -> a1.pin0 (branch)
--    6: SA0 @ a -> o1.pin0 (branch)
--    7: SA1 @ a -> o1.pin0 (branch)
--    8: SA0 @ b (stem)
--    9: SA1 @ b (stem)
--   10: SA0 @ b -> x3.pin1 (branch)
--   11: SA1 @ b -> x3.pin1 (branch)
--   12: SA0 @ b -> a1.pin1 (branch)
--   13: SA1 @ b -> a1.pin1 (branch)
--   14: SA0 @ b -> o1.pin1 (branch)
--   15: SA1 @ b -> o1.pin1 (branch)
--   16: SA0 @ cin (stem)
--   17: SA1 @ cin (stem)
--   18: SA0 @ cin -> x3.pin2 (branch)
--   19: SA1 @ cin -> x3.pin2 (branch)
--   20: SA0 @ cin -> a2.pin0 (branch)
--   21: SA1 @ cin -> a2.pin0 (branch)
--   22: SA0 @ s (stem)
--   23: SA1 @ s (stem)
--   24: SA0 @ g (stem)
--   25: SA1 @ g (stem)
--   26: SA0 @ t (stem)
--   27: SA1 @ t (stem)
--   28: SA0 @ h (stem)
--   29: SA1 @ h (stem)
--   30: SA0 @ cout (stem)
--   31: SA1 @ cout (stem)

library ieee;
use ieee.std_logic_1164.all;

entity rca4 is
  port (
    a0 : in  std_logic;
    a1 : in  std_logic;
    a2 : in  std_logic;
    a3 : in  std_logic;
    b0 : in  std_logic;
    b1 : in  std_logic;
    b2 : in  std_logic;
    b3 : in  std_logic;
    cin : in  std_logic;
    fa0_s : out std_logic;
    fa1_s : out std_logic;
    fa2_s : out std_logic;
    fa3_s : out std_logic;
    fa3_cout : out std_logic
  );
end entity rca4;

architecture structural of rca4 is
  signal fa0_p, fa0_g1, fa1_p, fa1_g1, fa2_p, fa2_g1, fa3_p, fa3_g1, fa0_g2, fa0_cout, fa1_g2, fa1_cout, fa2_g2, fa2_cout, fa3_g2 : std_logic;
begin
  fa0_p <= a0 xor b0;  -- fa0_x1
  fa0_g1 <= a0 and b0;  -- fa0_a1
  fa1_p <= a1 xor b1;  -- fa1_x1
  fa1_g1 <= a1 and b1;  -- fa1_a1
  fa2_p <= a2 xor b2;  -- fa2_x1
  fa2_g1 <= a2 and b2;  -- fa2_a1
  fa3_p <= a3 xor b3;  -- fa3_x1
  fa3_g1 <= a3 and b3;  -- fa3_a1
  fa0_s <= fa0_p xor cin;  -- fa0_x2
  fa0_g2 <= fa0_p and cin;  -- fa0_a2
  fa0_cout <= fa0_g1 or fa0_g2;  -- fa0_o1
  fa1_s <= fa1_p xor fa0_cout;  -- fa1_x2
  fa1_g2 <= fa1_p and fa0_cout;  -- fa1_a2
  fa1_cout <= fa1_g1 or fa1_g2;  -- fa1_o1
  fa2_s <= fa2_p xor fa1_cout;  -- fa2_x2
  fa2_g2 <= fa2_p and fa1_cout;  -- fa2_a2
  fa2_cout <= fa2_g1 or fa2_g2;  -- fa2_o1
  fa3_s <= fa3_p xor fa2_cout;  -- fa3_x2
  fa3_g2 <= fa3_p and fa2_cout;  -- fa3_a2
  fa3_cout <= fa3_g1 or fa3_g2;  -- fa3_o1
end architecture structural;

library ieee;
use ieee.std_logic_1164.all;

entity test_architecture is
  port (
    x0, x1, x2, x3 : in  std_logic;
    y0, y1, y2, y3 : in  std_logic;
    mismatch : out std_logic
  );
end entity test_architecture;

architecture paired of test_architecture is
  signal ris : std_logic_vector(3 downto 0);
  signal xv  : std_logic_vector(3 downto 0);
  signal chk : std_logic_vector(3 downto 0);
  signal gy  : std_logic_vector(3 downto 0);
  signal expect : std_logic_vector(3 downto 0);
  signal diff : std_logic_vector(3 downto 0);
begin
    xv(0) <= x0;
  xv(1) <= x1;
  xv(2) <= x2;
  xv(3) <= x3;
  -- nominal: ris = x + y            (cin = '0')
  -- dual:    chk = ris + g(x) + 1   (g = one's complement; cin = '1')
  -- checker: mismatch = '1' when chk /= y
  nominal : entity work.rca4
    port map (
      a0 => x0, a1 => x1, a2 => x2, a3 => x3,
      b0 => y0, b1 => y1, b2 => y2, b3 => y3,
      cin => '0',
      fa0_s => ris(0), fa1_s => ris(1), fa2_s => ris(2), fa3_s => ris(3),
      fa3_cout => open
    );
  -- The dual operation instantiates the same unit in a real run; the
  -- fault simulator (repro.coverage.engine) injects the fault into
  -- both instances to model reuse of the one physical unit.
  dual : entity work.rca4
    port map (
      a0 => ris(0), a1 => ris(1), a2 => ris(2), a3 => ris(3),
      b0 => gy(0), b1 => gy(1), b2 => gy(2), b3 => gy(3),
      cin => '1',
      fa0_s => chk(0), fa1_s => chk(1), fa2_s => chk(2), fa3_s => chk(3),
      fa3_cout => open
    );
  g_complement : for k in 0 to 3 generate
    gy(k) <= not xv(k);  -- g(op1): one's complement of the subtrahend
  end generate;
    expect(0) <= y0;
  expect(1) <= y1;
  expect(2) <= y2;
  expect(3) <= y3;
  compare : for k in 0 to 3 generate
    diff(k) <= chk(k) xor expect(k);
  end generate;
  mismatch <= diff(0) or diff(1) or diff(2) or diff(3);
end architecture paired;
