module rca4(a0, a1, a2, a3, b0, b1, b2, b3, cin, fa0_s, fa1_s, fa2_s, fa3_s, fa3_cout);
  input a0;
  input a1;
  input a2;
  input a3;
  input b0;
  input b1;
  input b2;
  input b3;
  input cin;
  output fa0_s;
  output fa1_s;
  output fa2_s;
  output fa3_s;
  output fa3_cout;
  wire fa0_p;
  wire fa0_g1;
  wire fa1_p;
  wire fa1_g1;
  wire fa2_p;
  wire fa2_g1;
  wire fa3_p;
  wire fa3_g1;
  wire fa0_g2;
  wire fa0_cout;
  wire fa1_g2;
  wire fa1_cout;
  wire fa2_g2;
  wire fa2_cout;
  wire fa3_g2;
  assign fa0_p = a0 ^ b0;  // fa0_x1
  assign fa0_g1 = a0 & b0;  // fa0_a1
  assign fa1_p = a1 ^ b1;  // fa1_x1
  assign fa1_g1 = a1 & b1;  // fa1_a1
  assign fa2_p = a2 ^ b2;  // fa2_x1
  assign fa2_g1 = a2 & b2;  // fa2_a1
  assign fa3_p = a3 ^ b3;  // fa3_x1
  assign fa3_g1 = a3 & b3;  // fa3_a1
  assign fa0_s = fa0_p ^ cin;  // fa0_x2
  assign fa0_g2 = fa0_p & cin;  // fa0_a2
  assign fa0_cout = fa0_g1 | fa0_g2;  // fa0_o1
  assign fa1_s = fa1_p ^ fa0_cout;  // fa1_x2
  assign fa1_g2 = fa1_p & fa0_cout;  // fa1_a2
  assign fa1_cout = fa1_g1 | fa1_g2;  // fa1_o1
  assign fa2_s = fa2_p ^ fa1_cout;  // fa2_x2
  assign fa2_g2 = fa2_p & fa1_cout;  // fa2_a2
  assign fa2_cout = fa2_g1 | fa2_g2;  // fa2_o1
  assign fa3_s = fa3_p ^ fa2_cout;  // fa3_x2
  assign fa3_g2 = fa3_p & fa2_cout;  // fa3_a2
  assign fa3_cout = fa3_g1 | fa3_g2;  // fa3_o1
endmodule
