module fa(a, b, cin, s, cout);
  input a;
  input b;
  input cin;
  output s;
  output cout;
  wire p;
  wire g1;
  wire g2;
  assign p = a ^ b;  // x1
  assign g1 = a & b;  // a1
  assign s = p ^ cin;  // x2
  assign g2 = p & cin;  // a2
  assign cout = g1 | g2;  // o1
endmodule

module fa_selftest(clk, ok, done);
  input clk;
  output ok;
  output done;

  localparam TEST_COUNT = 5;
  // compact test set: fa: 5 tests cover 32/32 faults (100.00%, greedy-dictionary)
  reg [2:0] stim_rom [0:TEST_COUNT-1];
  reg [1:0] resp_rom [0:TEST_COUNT-1];
  reg [31:0] index_q = 0;
  reg ok_q = 1'b1;
  reg done_q = 1'b0;

  initial begin
    stim_rom[0] = 3'b001;  // 0: +14 fault(s)
    stim_rom[1] = 3'b110;  // 1: +11 fault(s)
    stim_rom[2] = 3'b011;  // 2: +5 fault(s)
    stim_rom[3] = 3'b010;  // 3: +1 fault(s)
    stim_rom[4] = 3'b100;  // 4: +1 fault(s)
    resp_rom[0] = 2'b01;
    resp_rom[1] = 2'b10;
    resp_rom[2] = 2'b10;
    resp_rom[3] = 2'b01;
    resp_rom[4] = 2'b01;
  end

  wire [2:0] stim = done_q ? {3{1'b0}} : stim_rom[index_q];
  wire [1:0] resp;

  fa dut (
    .a(stim[0]),
    .b(stim[1]),
    .cin(stim[2]),
    .s(resp[0]),
    .cout(resp[1])
  );

  always @(posedge clk) begin
    if (!done_q) begin
      if (resp !== resp_rom[index_q])
        ok_q <= 1'b0;
      if (index_q == TEST_COUNT - 1)
        done_q <= 1'b1;
      else
        index_q <= index_q + 1;
    end
  end

  assign ok = ok_q;
  assign done = done_q;
endmodule
