template <class TYPE>
class SCK
{
  private:
    TYPE ID;    // internal data
    bool E;     // error bit

  public:
    SCK() {}                       // empty constructor (synthesis)
    SCK(TYPE v) : ID(v), E(false) {}

    TYPE GetID() const   { return ID; }
    bool GetError() const { return E; }

    SCK<TYPE> &operator=(const SCK<TYPE> &src);
    SCK<TYPE> operator+(const SCK<TYPE> &op2) const;
    SCK<TYPE> operator-(const SCK<TYPE> &op2) const;
    SCK<TYPE> operator*(const SCK<TYPE> &op2) const;
    SCK<TYPE> operator/(const SCK<TYPE> &op2) const;
};

template <class TYPE>
SCK<TYPE> SCK<TYPE>::operator+(const SCK<TYPE> &op2) const
{
    const SCK<TYPE> &op1 = *this;
    SCK<TYPE> ris;
    bool err = op1.E || op2.E;        // error propagation
    ris.ID = op1.ID + op2.ID;  // nominal operation
    TYPE chk1 = ris.ID - op1.ID;  // hidden inverse operations
    TYPE chk2 = ris.ID - op2.ID;
    err = err || (chk1 != op2.ID) || (chk2 != op1.ID);
    ris.E = err;
    return ris;
}

template <class TYPE>
SCK<TYPE> SCK<TYPE>::operator-(const SCK<TYPE> &op2) const
{
    const SCK<TYPE> &op1 = *this;
    SCK<TYPE> ris;
    bool err = op1.E || op2.E;        // error propagation
    ris.ID = op1.ID - op2.ID;  // nominal operation
    TYPE chk1 = ris.ID + op2.ID;
    TYPE chk2 = op2.ID - op1.ID;
    err = err || (chk1 != op1.ID) || ((ris.ID + chk2) != 0);
    ris.E = err;
    return ris;
}

template <class TYPE>
SCK<TYPE> SCK<TYPE>::operator*(const SCK<TYPE> &op2) const
{
    const SCK<TYPE> &op1 = *this;
    SCK<TYPE> ris;
    bool err = op1.E || op2.E;        // error propagation
    ris.ID = op1.ID * op2.ID;  // nominal operation
    TYPE chk = (-op1.ID) * op2.ID;  // hidden dual product
    err = err || ((ris.ID + chk) != 0);
    ris.E = err;
    return ris;
}

template <class TYPE>
SCK<TYPE> SCK<TYPE>::operator/(const SCK<TYPE> &op2) const
{
    const SCK<TYPE> &op1 = *this;
    SCK<TYPE> ris;
    bool err = op1.E || op2.E;        // error propagation
    ris.ID = op1.ID / op2.ID;  // nominal operation
    TYPE rem = op1.ID % op2.ID;     // remainder correction
    TYPE chk = ris.ID * op2.ID + rem;
    err = err || (chk != op1.ID) || (rem < 0 ? -rem : rem) >= (op2.ID < 0 ? -op2.ID : op2.ID);
    ris.E = err;
    return ris;
}
