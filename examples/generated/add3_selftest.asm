; program add3_selftest
    ldi r5 0
    ldi r1 -1
    ldi r2 0
    add r3 r1 r2
    ldi r4 -1
    cmpne r6 r3 r4
    or r5 r5 r6
    ldi r1 0
    ldi r2 -1
    add r3 r1 r2
    ldi r6 1
    add r3 r3 r6
    ldi r4 0
    cmpne r6 r3 r4
    or r5 r5 r6
    ldi r1 -1
    ldi r2 -1
    add r3 r1 r2
    ldi r4 -2
    cmpne r6 r3 r4
    or r5 r5 r6
    ldi r1 0
    ldi r2 -1
    add r3 r1 r2
    ldi r4 -1
    cmpne r6 r3 r4
    or r5 r5 r6
    ldi r1 2
    ldi r2 2
    add r3 r1 r2
    ldi r6 1
    add r3 r3 r6
    ldi r4 -3
    cmpne r6 r3 r4
    or r5 r5 r6
    ldi r1 1
    ldi r2 1
    add r3 r1 r2
    ldi r4 2
    cmpne r6 r3 r4
    or r5 r5 r6
    st r0 r5 0
    halt
