"""Generate compact self-test sets for the arithmetic units.

For each unit (adder, subtractor, multiplier, divider) at n = 3:

1. run the ATPG loop (seeded random phases + exhaustive residual sweep),
2. greedily compact the discovered vectors,
3. validate the compact set end to end: replaying it through the
   campaign engine must reproduce the dictionary's claimed per-fault
   detection bit for bit,
4. print the per-unit generation report.

Then emit the full adder's self-test bench (VHDL + Verilog, stimulus ROM
plus golden-response checking) and a VM self-test program exercising the
monoprocessor's faultable adder with the same test set, to
examples/generated/.

Run:  PYTHONPATH=src python examples/compact_test_sets.py
"""

from pathlib import Path

import numpy as np

from repro.gates.builders import full_adder
from repro.tpg import (
    compact_test_set,
    emit_self_test_verilog,
    emit_self_test_vhdl,
    emit_vm_self_test,
    render_tpg_report,
    replay_detected,
    tpg_unit_results,
    unit_netlist,
    unit_test_set,
)

WIDTH = 3


def main() -> None:
    results = tpg_unit_results(width=WIDTH)
    for unit, result in results.items():
        replay = replay_detected(unit_netlist(unit, WIDTH), result.compact.vectors)
        assert np.array_equal(replay, result.compact.detected), unit
    print(render_tpg_report(width=WIDTH, results=results))
    print()

    out_dir = Path(__file__).parent / "generated"
    out_dir.mkdir(exist_ok=True)
    fa = full_adder()
    test_set = compact_test_set(fa)  # RNG-free greedy cover of the dictionary
    (out_dir / "full_adder_selftest.vhd").write_text(
        emit_self_test_vhdl(fa, test_set)
    )
    (out_dir / "full_adder_selftest.v").write_text(
        emit_self_test_verilog(fa, test_set)
    )
    print(f"wrote full_adder_selftest.vhd/.v ({test_set.n_tests} ROM entries)")

    program = emit_vm_self_test(unit_test_set("add", WIDTH), "add", WIDTH)
    (out_dir / "add3_selftest.asm").write_text(program.program.listing() + "\n")
    assert program.run() is False  # fault-free machine passes its self-test
    print(
        f"wrote add3_selftest.asm ({len(program.program.instructions)} "
        f"instructions, fault-free self-test passes)"
    )


if __name__ == "__main__":
    main()
