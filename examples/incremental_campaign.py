"""Edit-sim loop: cone-sparse kernels + incremental recomputation.

The walk-through:

1. run the RCA-8 whole-universe campaign dense and cone-sparse -- the
   sparse tier walks only each fault batch's fan-out cone and is
   bit-identical in every verdict field;
2. edit one gate (the bit-0 sum XOR, whose cone reaches a single
   primary output) and recompute incrementally -- the edit's dirty
   cone is proved, untouched verdicts are reused from the previous
   result, and only the remainder is re-simulated, again
   bit-identically to a from-scratch campaign;
3. chain a second edit through the result store: the merged
   incremental result lands under the new netlist's regular campaign
   key, so the next incremental step finds its "old" result there
   without being handed one.

Run:  PYTHONPATH=src python examples/incremental_campaign.py
"""

import tempfile
import time

import numpy as np

from repro import ResultStore, diff_netlists, incremental_stuck_at_campaign
from repro.faults.injector import run_sharded_stuck_at_campaign
from repro.gates import builders
from repro.gates.engine import run_stuck_at_campaign
from repro.gates.netlist import CellType

WIDTH = 8


def main() -> None:
    v1 = builders.ripple_carry_adder(WIDTH)

    # 1. Dense vs cone-sparse: same verdicts, less work.
    t0 = time.perf_counter()
    dense = run_stuck_at_campaign(v1, sparse=False)
    t_dense = time.perf_counter() - t0
    t0 = time.perf_counter()
    sparse = run_stuck_at_campaign(v1, sparse=True)
    t_sparse = time.perf_counter() - t0
    assert np.array_equal(dense.detected, sparse.detected)
    assert np.array_equal(dense.first_detected, sparse.first_detected)
    print(
        f"RCA-{WIDTH} campaign: dense {t_dense * 1e3:.1f} ms, "
        f"sparse {t_sparse * 1e3:.1f} ms, verdicts bit-identical"
    )

    # 2. One-gate edit, recomputed incrementally against the old result.
    v2 = v1.copy()
    v2.replace_gate("fa0_x2", cell_type=CellType.XNOR)
    print("edit:", diff_netlists(v1, v2).describe())

    t0 = time.perf_counter()
    inc = incremental_stuck_at_campaign(v1, v2, old_result=dense)
    t_inc = time.perf_counter() - t0
    t0 = time.perf_counter()
    scratch = run_stuck_at_campaign(v2)
    t_scratch = time.perf_counter() - t0
    assert np.array_equal(inc.result.detected, scratch.detected)
    assert np.array_equal(inc.result.first_detected, scratch.first_detected)
    print(
        f"incremental {t_inc * 1e3:.1f} ms vs scratch "
        f"{t_scratch * 1e3:.1f} ms -- {inc.reason}"
    )
    assert inc.reuse_fraction > 0.5

    # 3. Chain a second edit through the store: no old_result handed in.
    store = ResultStore(tempfile.mkdtemp(prefix="repro-store-"))
    run_sharded_stuck_at_campaign(v1, workers=1, store=store)
    step1 = incremental_stuck_at_campaign(v1, v2, store=store)
    v3 = v2.copy()
    v3.replace_gate("fa7_x2", cell_type=CellType.XNOR)
    step2 = incremental_stuck_at_campaign(v2, v3, store=store)
    assert not step1.scratch and not step2.scratch
    assert np.array_equal(
        step2.result.detected, run_stuck_at_campaign(v3).detected
    )
    print(f"chained through store: {step2.reason}")


if __name__ == "__main__":
    main()
