"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` can fall back to the legacy setuptools editable
install when PEP 660 build hooks are unavailable (offline images).
"""

from setuptools import setup

setup()
